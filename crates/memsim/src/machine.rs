//! The simulated machine.

use crate::cache::{DirtySet, ReadSet};
use crate::config::MachineConfig;
use crate::crash::{CrashPlan, CrashState, PlanEvent, PlanState};
use crate::elide::{ElidePlan, ElideState, ElideStats};
use crate::stats::MemStats;
use crate::wcb::WriteCombine;
use pmem::{
    lines_spanning, Addr, DramDevice, FxHashMap, Line, MemoryKind, PmDevice, PmImage, LINE_SIZE,
};
use pmtrace::{Category, Tid, TraceBuffer, TxId};

const LINE: usize = LINE_SIZE as usize;

/// What a crash hands to the crash model: functional PM, durable PM,
/// dirty sets, pending flushes, and (live) write-combining entries.
pub(crate) type CrashParts = (
    PmDevice,
    PmDevice,
    Vec<DirtySet>,
    Vec<Vec<PendingLine>>,
    Vec<Vec<PendingLine>>,
);

/// A line-sized snapshot waiting to become durable.
#[derive(Debug, Clone)]
pub(crate) struct PendingLine {
    pub(crate) line: Line,
    pub(crate) data: [u8; LINE],
    /// Global snapshot order, so a fence drains mixed `clwb` and
    /// write-combining entries oldest-first (newest value wins at the
    /// device).
    pub(crate) seq: u64,
}

/// The simulated machine: functional memory, durability tracking,
/// persistence instructions, trace recording, clock, and counters.
///
/// All operations name the issuing hardware thread ([`Tid`]); ids must
/// be `< config.threads`. See the crate docs for the functional/durable
/// split that makes application logic independent of the cache model.
///
/// When [`pmobs`] recording is enabled the machine also counts cache
/// hits/misses, persistence instructions, and WCB/eviction drains under
/// `memsim.*` — side-channel atomics that never touch the simulated
/// clock or the trace, so instrumented runs stay bit-identical.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    dram: DramDevice,
    /// Always-current PM contents (what loads observe).
    pm_functional: PmDevice,
    /// Crash-surviving PM contents (what recovery observes).
    pm_durable: PmDevice,
    /// Per-thread dirty cacheable PM lines.
    dirty: Vec<DirtySet>,
    /// Per-thread recently-referenced PM lines (clean); a PM load that
    /// hits here is cache-served and does not count as memory traffic.
    read_cache: Vec<ReadSet>,
    /// Per-thread `clwb` snapshots awaiting an `sfence`.
    pending: Vec<Vec<PendingLine>>,
    /// Write-combining buffers for non-temporal stores (all threads).
    wcb: WriteCombine,
    /// line -> bitmask of threads holding the line dirty. Mirrors the
    /// per-thread [`DirtySet`]s (every mutation goes through
    /// [`Machine::dirty_touch`]/[`Machine::dirty_remove`]) so `clwb`'s
    /// cross-thread holder search is one lookup instead of a probe of
    /// every thread's set. A `u64` mask caps the machine at 64 threads,
    /// asserted at construction (the paper's machine has 8).
    dirty_index: FxHashMap<Line, u64>,
    /// Reusable drain buffer for [`Machine::fence_impl`], so a fence
    /// allocates nothing in steady state.
    fence_scratch: Vec<PendingLine>,
    clock_ns: u64,
    trace: TraceBuffer,
    stats: MemStats,
    dram_brk: Addr,
    /// Per-thread transaction-id counters for `tx_begin`.
    next_tx: Vec<TxId>,
    /// Monotone snapshot counter ordering in-flight writebacks.
    snap_seq: u64,
    /// Armed crash-injection plan (None in normal runs — the hooks in
    /// the store/flush/fence paths then cost one branch each).
    plan: Option<PlanState>,
    /// Armed elision plan: skip the planned flush/fence ordinals when
    /// they are machine-level no-ops (see [`crate::elide`]). `None` in
    /// normal runs — one branch per flush/fence.
    elide: Option<ElideState>,
    /// The workload's progress marker (see [`Machine::note_progress`]).
    progress: u64,
    /// Simulated-time trace sink (`pmobs::trace`): fence-drain spans,
    /// WCB-overflow and eviction instants. `None` unless tracing was
    /// enabled (and a naming context installed) at construction, so
    /// normal runs pay one `Option` branch per site. Events carry only
    /// values the simulation already computed — never perturbs results.
    obs_trace: Option<pmobs::trace::TraceSink>,
}

impl Machine {
    /// A machine with zeroed memory.
    pub fn new(cfg: MachineConfig) -> Machine {
        Machine::with_pm_image(cfg, None)
    }

    /// A machine whose PM is initialized from a crash image — the
    /// "reboot" path for recovery testing. DRAM and caches start empty.
    pub fn from_image(cfg: MachineConfig, image: &PmImage) -> Machine {
        Machine::with_pm_image(cfg, Some(image))
    }

    fn with_pm_image(cfg: MachineConfig, image: Option<&PmImage>) -> Machine {
        assert!(cfg.threads > 0, "machine needs at least one thread");
        assert!(
            cfg.threads <= 64,
            "dirty-line index is a u64 thread bitmask; {} threads exceed 64",
            cfg.threads
        );
        let (pm_functional, pm_durable) = match image {
            Some(img) => {
                assert_eq!(img.range(), cfg.map.pm, "image does not match PM range");
                (PmDevice::from_image(img), PmDevice::from_image(img))
            }
            None => (PmDevice::new(cfg.map.pm), PmDevice::new(cfg.map.pm)),
        };
        let n = cfg.threads as usize;
        Machine {
            dram: DramDevice::new(cfg.map.dram),
            pm_functional,
            pm_durable,
            dirty: (0..n).map(|_| DirtySet::new(cfg.l1_dirty_lines)).collect(),
            read_cache: (0..n).map(|_| ReadSet::new(cfg.l2_lines)).collect(),
            pending: vec![Vec::new(); n],
            wcb: WriteCombine::new(n),
            dirty_index: FxHashMap::default(),
            fence_scratch: Vec::new(),
            clock_ns: 0,
            trace: TraceBuffer::new(),
            stats: MemStats::default(),
            dram_brk: cfg.map.dram.base,
            next_tx: vec![1; n],
            snap_seq: 0,
            plan: None,
            elide: None,
            progress: 0,
            obs_trace: pmobs::trace::sink("memsim"),
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advance the clock without touching memory (compute/think time).
    pub fn advance_ns(&mut self, ns: u64) {
        self.clock_ns += ns;
    }

    /// Account for `n` cache-resident DRAM accesses without simulating
    /// each one — the fast path for modeling an application's volatile
    /// work (request parsing, volatile indexes), which Figure 6 shows
    /// is >96% of all traffic.
    pub fn dram_bulk(&mut self, tid: Tid, n: u64) {
        self.check_tid(tid);
        self.stats.dram_accesses += n;
        self.clock_ns += n * self.cfg.lat.l1_hit_ns;
    }

    /// Access counters (Figure 6 input).
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The recorded trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable access to the trace buffer (e.g. to disable recording).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Media-level line writes to the PM device so far (includes
    /// evictions, flush drains, and WCB drains).
    pub fn media_line_writes(&self) -> u64 {
        self.pm_durable.total_line_writes()
    }

    /// Validate `tid` against this machine's thread count — the single
    /// source of truth every per-thread layer (engines, structures,
    /// replay models) should size itself from.
    ///
    /// # Errors
    ///
    /// [`crate::TidError`] when `tid` names a slot the machine does not
    /// have.
    pub fn validate_tid(&self, tid: Tid) -> Result<(), crate::TidError> {
        if (tid.0 as usize) < self.dirty.len() {
            Ok(())
        } else {
            Err(crate::TidError {
                tid,
                threads: self.cfg.threads,
            })
        }
    }

    fn check_tid(&self, tid: Tid) {
        if let Err(e) = self.validate_tid(tid) {
            panic!("{e}");
        }
    }

    /// Mark `line` dirty for thread `t`, keeping [`Machine::dirty_index`]
    /// in sync (including for the evicted victim, if any).
    fn dirty_touch(&mut self, t: usize, line: Line) -> Option<Line> {
        let victim = self.dirty[t].touch(line);
        *self.dirty_index.entry(line).or_insert(0) |= 1 << t;
        if let Some(v) = victim {
            // The victim always differs from the just-touched line (a
            // fresh touch is the newest stamp, never the LRU).
            self.dirty_index_clear(t, v);
        }
        victim
    }

    /// Remove `line` from thread `t`'s dirty set, syncing the index.
    fn dirty_remove(&mut self, t: usize, line: Line) {
        if self.dirty[t].remove(line) {
            self.dirty_index_clear(t, line);
        }
    }

    fn dirty_index_clear(&mut self, t: usize, line: Line) {
        if let Some(mask) = self.dirty_index.get_mut(&line) {
            *mask &= !(1 << t);
            if *mask == 0 {
                self.dirty_index.remove(&line);
            }
        }
    }

    /// First thread holding `line` dirty, probing in the order
    /// `tid, tid+1, … (mod threads)` — the issuing thread is the common
    /// case. One index lookup plus bit arithmetic; equivalent to the
    /// old per-thread probe loop because mask bits at or above
    /// `cfg.threads` are never set.
    fn dirty_holder_from(&self, tid: Tid, line: Line) -> Option<usize> {
        let mask = *self.dirty_index.get(&line)?;
        debug_assert_ne!(mask, 0, "index never stores an empty mask");
        let d = mask.rotate_right(tid.0).trailing_zeros() as usize;
        Some((tid.0 as usize + d) % 64)
    }

    fn kind_of(&self, addr: Addr, len: usize) -> MemoryKind {
        self.cfg
            .map
            .kind_of_span(addr, len)
            .unwrap_or_else(|| panic!("access outside memory map: {addr:#x}+{len}"))
    }

    /// Bump-allocate zeroed DRAM (for volatile application state).
    ///
    /// # Panics
    ///
    /// Panics when DRAM is exhausted or `align` is not a power of two.
    pub fn alloc_dram(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.dram_brk + align - 1) & !(align - 1);
        assert!(
            base + len <= self.cfg.map.dram.end(),
            "DRAM exhausted: want {len} bytes at {base:#x}"
        );
        self.dram_brk = base + len;
        base
    }

    /// Allocate a fresh per-thread durable-transaction id.
    pub fn fresh_tx_id(&mut self, tid: Tid) -> TxId {
        self.check_tid(tid);
        let id = self.next_tx[tid.0 as usize];
        self.next_tx[tid.0 as usize] += 1;
        id
    }

    /// Record the start of a durable transaction in the trace.
    pub fn tx_begin(&mut self, tid: Tid, id: TxId) {
        self.trace.tx_begin(tid, id, self.clock_ns);
    }

    /// Record a durable-transaction commit in the trace.
    pub fn tx_end(&mut self, tid: Tid, id: TxId) {
        self.trace.tx_end(tid, id, self.clock_ns);
    }

    // ---------------------------------------------------------------
    // Loads
    // ---------------------------------------------------------------

    /// Load `buf.len()` bytes from `addr` into `buf`.
    pub fn load(&mut self, tid: Tid, addr: Addr, buf: &mut [u8]) {
        self.check_tid(tid);
        if buf.is_empty() {
            return;
        }
        match self.kind_of(addr, buf.len()) {
            MemoryKind::Dram => {
                self.dram.read(addr, buf);
                let lines = lines_spanning(addr, buf.len()).count() as u64;
                self.stats.dram_accesses += lines;
                self.clock_ns += self.cfg.lat.l1_hit_ns * lines;
            }
            MemoryKind::Pm => {
                self.pm_functional.read(addr, buf);
                for (line, _, _) in lines_spanning(addr, buf.len()) {
                    let t = tid.0 as usize;
                    let cached = self.dirty[t].contains(line) || self.read_cache[t].touch(line);
                    if cached {
                        pmobs::count!("memsim.pm_load_hit");
                        self.clock_ns += self.cfg.lat.l1_hit_ns;
                    } else {
                        // A miss is memory traffic (Figure 6).
                        pmobs::count!("memsim.pm_load_miss");
                        self.stats.pm_reads += 1;
                        self.clock_ns += self.cfg.lat.pm_read_ns;
                    }
                }
            }
        }
    }

    /// Load `len` bytes into a fresh vector.
    pub fn load_vec(&mut self, tid: Tid, addr: Addr, len: usize) -> Vec<u8> {
        let mut v = vec![0; len];
        self.load(tid, addr, &mut v);
        v
    }

    /// Load a little-endian `u64`.
    pub fn load_u64(&mut self, tid: Tid, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.load(tid, addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Load a little-endian `u32`.
    pub fn load_u32(&mut self, tid: Tid, addr: Addr) -> u32 {
        let mut b = [0u8; 4];
        self.load(tid, addr, &mut b);
        u32::from_le_bytes(b)
    }

    // ---------------------------------------------------------------
    // Stores
    // ---------------------------------------------------------------

    /// Cacheable store. For PM spans the affected lines become dirty in
    /// the issuing thread's cache (volatile until flushed, fenced, or
    /// evicted) and a trace event is recorded.
    pub fn store(&mut self, tid: Tid, addr: Addr, bytes: &[u8], cat: Category) {
        self.check_tid(tid);
        if bytes.is_empty() {
            return;
        }
        match self.kind_of(addr, bytes.len()) {
            MemoryKind::Dram => {
                self.dram.write(addr, bytes);
                let lines = lines_spanning(addr, bytes.len()).count() as u64;
                self.stats.dram_accesses += lines;
                self.clock_ns += self.cfg.lat.l1_hit_ns * lines;
            }
            MemoryKind::Pm => {
                self.pm_functional.write(addr, bytes);
                self.trace
                    .pm_store(tid, addr, bytes.len() as u32, false, cat, self.clock_ns);
                for (line, _, _) in lines_spanning(addr, bytes.len()) {
                    pmobs::count!("memsim.pm_store_lines");
                    self.clock_ns += self.cfg.lat.l1_hit_ns;
                    self.read_cache[tid.0 as usize].touch(line);
                    // A cacheable store supersedes any write-combining
                    // entry for the line: the cache path now owns its
                    // durability (mixing NT and cacheable stores to one
                    // line is otherwise undefined on real hardware).
                    self.wcb.supersede(line);
                    if let Some(victim) = self.dirty_touch(tid.0 as usize, line) {
                        self.write_back(victim);
                    }
                }
                self.plan_event(PlanEvent::Store);
            }
        }
    }

    /// Non-temporal store: bypasses the cache into the write-combining
    /// buffer. Entries become durable when the WCB fills or at the next
    /// `sfence`. PM only.
    ///
    /// # Panics
    ///
    /// Panics if the span is not entirely in PM.
    pub fn store_nt(&mut self, tid: Tid, addr: Addr, bytes: &[u8], cat: Category) {
        self.check_tid(tid);
        if bytes.is_empty() {
            return;
        }
        assert_eq!(
            self.kind_of(addr, bytes.len()),
            MemoryKind::Pm,
            "non-temporal stores are modeled for PM only"
        );
        self.pm_functional.write(addr, bytes);
        self.trace
            .pm_store(tid, addr, bytes.len() as u32, true, cat, self.clock_ns);
        for (line, _, _) in lines_spanning(addr, bytes.len()) {
            pmobs::count!("memsim.pm_nt_store_lines");
            self.clock_ns += self.cfg.lat.l1_hit_ns;
            let t = tid.0 as usize;
            // NT stores must not leave stale dirty cache state: the line
            // is written around the cache.
            self.dirty_remove(t, line);
            let data = *self.pm_functional.line_view(line);
            self.snap_seq += 1;
            let inserted = self.wcb.upsert(t, line, data, self.snap_seq);
            if inserted && self.wcb.live_len(t) > self.cfg.wcb_entries {
                pmobs::count!("memsim.wcb_overflow_drains");
                let oldest = self.wcb.pop_oldest_live(t);
                self.media_write(oldest.line, &oldest.data);
                self.clock_ns += self.cfg.lat.pm_write_ns;
                if let Some(s) = self.obs_trace.as_mut() {
                    s.instant("wcb_overflow_drain", self.clock_ns, oldest.line.base());
                }
            }
        }
        self.plan_event(PlanEvent::Store);
    }

    /// Store a little-endian `u64` (cacheable).
    pub fn store_u64(&mut self, tid: Tid, addr: Addr, val: u64, cat: Category) {
        self.store(tid, addr, &val.to_le_bytes(), cat);
    }

    /// Store a little-endian `u32` (cacheable).
    pub fn store_u32(&mut self, tid: Tid, addr: Addr, val: u32, cat: Category) {
        self.store(tid, addr, &val.to_le_bytes(), cat);
    }

    // ---------------------------------------------------------------
    // Persistence instructions
    // ---------------------------------------------------------------

    /// `clwb`/`clflushopt`: snapshot the (dirty) line containing `addr`
    /// into the flush-pending set. The data becomes durable at the next
    /// `sfence` from this thread. Flushing a clean line is a no-op
    /// beyond its issue cost.
    pub fn clwb(&mut self, tid: Tid, addr: Addr) {
        pmobs::count!("memsim.clwb");
        self.clwb_line(tid, addr);
    }

    /// The shared `clwb`/`clflushopt` body: trace, issue cost, and the
    /// dirty-line snapshot. Returns the affected line (and whether an
    /// armed elision plan skipped the instruction) so `clflushopt`
    /// does not recompute or invalidate it.
    fn clwb_line(&mut self, tid: Tid, addr: Addr) -> (Line, bool) {
        self.check_tid(tid);
        let line = Line::containing(addr);
        if let Some(e) = self.elide.as_mut() {
            e.seen_flushes += 1;
            if e.plan.wants_flush(e.seen_flushes) {
                // Skip only a machine-level no-op: the line must be
                // clean in every thread's cache. Untraced setup can
                // leave a checker-"clean" line dirty here — veto.
                if self.dirty_index.contains_key(&line) {
                    e.stats.flush_vetoes += 1;
                } else {
                    e.stats.flushes_elided += 1;
                    return (line, true);
                }
            }
        }
        self.trace.flush(tid, addr, self.clock_ns);
        self.clock_ns += self.cfg.lat.clwb_issue_ns;
        // The line may be dirty in any thread's cache (coherence finds
        // it); check the issuing thread first as the common case.
        if let Some(i) = self.dirty_holder_from(tid, line) {
            self.dirty_remove(i, line);
            let data = *self.pm_functional.line_view(line);
            self.snap_seq += 1;
            self.pending[tid.0 as usize].push(PendingLine {
                line,
                data,
                seq: self.snap_seq,
            });
        }
        self.plan_event(PlanEvent::Flush);
        (line, false)
    }

    /// `clflushopt`: like [`Machine::clwb`] for durability, but also
    /// *invalidates* the line, so the next load is a memory access —
    /// the retention-vs-eviction difference between the two
    /// instructions. Counts under both `memsim.clflushopt` and
    /// `memsim.clwb` (it issues one).
    pub fn clflushopt(&mut self, tid: Tid, addr: Addr) {
        pmobs::count!("memsim.clflushopt");
        pmobs::count!("memsim.clwb");
        let (line, elided) = self.clwb_line(tid, addr);
        if elided {
            return;
        }
        for rc in &mut self.read_cache {
            rc.invalidate(line);
        }
    }

    /// `sfence`: all of this thread's outstanding flushes and
    /// non-temporal stores become durable before the fence completes.
    /// Records an ordering-fence trace event (ends the epoch).
    pub fn sfence(&mut self, tid: Tid) {
        self.fence_impl(tid, false);
    }

    /// An `sfence` that the program semantically relies on for
    /// *durability* (transaction commit, pre-I/O barrier). Identical
    /// machine behavior to [`Machine::sfence`]; recorded as a
    /// durability fence so the HOPS replay can distinguish `dfence`
    /// sites from plain ordering (`ofence`) sites.
    pub fn sfence_durable(&mut self, tid: Tid) {
        self.fence_impl(tid, true);
    }

    fn fence_impl(&mut self, tid: Tid, durable: bool) {
        self.check_tid(tid);
        let t = tid.0 as usize;
        if let Some(e) = self.elide.as_mut() {
            e.seen_fences += 1;
            if e.plan.wants_fence(e.seen_fences) {
                // Skip only when the fence would retire nothing for
                // this thread; otherwise execute it anyway (veto).
                if self.pending[t].is_empty() && self.wcb.live_len(t) == 0 {
                    e.stats.fences_elided += 1;
                    return;
                }
                e.stats.fence_vetoes += 1;
            }
        }
        // Merge clwb snapshots and write-combining entries and drain
        // them in snapshot order, so the newest value of a line wins at
        // the device even when cacheable and non-temporal writes mixed.
        // The scratch buffer is reused fence to fence, and `append`
        // leaves `pending[t]`'s allocation in place.
        let mut entries = std::mem::take(&mut self.fence_scratch);
        entries.append(&mut self.pending[t]);
        self.wcb.drain_thread(t, &mut entries);
        entries.sort_unstable_by_key(|e| e.seq);
        let drained = entries.len() as u64;
        let fence_start_ns = self.clock_ns;
        if durable {
            pmobs::count!("memsim.dfence");
        } else {
            pmobs::count!("memsim.sfence");
        }
        pmobs::observe!("memsim.fence_drain_lines", pmobs::Unit::Count, drained);
        for e in entries.drain(..) {
            self.media_write(e.line, &e.data);
        }
        self.fence_scratch = entries;
        // The first writeback pays full PM latency; subsequent ones
        // pipeline across memory-controller banks.
        self.clock_ns += self.cfg.lat.sfence_ns;
        if drained > 0 {
            self.clock_ns +=
                self.cfg.lat.pm_write_ns + (drained - 1) * self.cfg.lat.pm_write_ns / 4;
        }
        if durable {
            self.trace.dfence(tid, self.clock_ns);
        } else {
            self.trace.fence(tid, self.clock_ns);
        }
        if let Some(s) = self.obs_trace.as_mut() {
            // One span per fence covering its drain+stall window; the
            // value is the drained line count.
            s.begin(
                if durable { "dfence" } else { "fence" },
                fence_start_ns,
                drained,
            );
            s.end(self.clock_ns);
        }
        self.plan_event(PlanEvent::Fence);
    }

    fn write_back(&mut self, line: Line) {
        pmobs::count!("memsim.dirty_evictions");
        let data = *self.pm_functional.line_view(line);
        self.media_write(line, &data);
        self.clock_ns += self.cfg.lat.pm_write_ns;
        if let Some(s) = self.obs_trace.as_mut() {
            s.instant("dirty_eviction", self.clock_ns, line.base());
        }
    }

    /// All durable writes funnel here; this is also where PM write
    /// traffic is counted (Figure 6 counts memory-level traffic, and a
    /// PM line is written to memory exactly when it persists).
    fn media_write(&mut self, line: Line, data: &[u8; LINE]) {
        self.pm_durable.write(line.base(), data);
        self.stats.pm_writes += 1;
    }

    // ---------------------------------------------------------------
    // Durability inspection & crash (crash body in crash.rs)
    // ---------------------------------------------------------------

    /// Whether the *current* functional contents of `[addr, addr+len)`
    /// are durable (would read back identically after `DropVolatile`).
    pub fn is_durable(&self, addr: Addr, len: usize) -> bool {
        assert!(
            self.pm_functional.range().contains_span(addr, len),
            "PM read out of range: {addr:#x}+{len}"
        );
        // Compare through borrowed line views — no buffer materializes.
        lines_spanning(addr, len).all(|(line, start, l)| {
            let off = line.offset_of(start);
            let f = self.pm_functional.line_view(line);
            let d = self.pm_durable.line_view(line);
            f[off..off + l] == d[off..off + l]
        })
    }

    /// Snapshot of durable PM only (no in-flight writes).
    pub fn durable_image(&self) -> PmImage {
        self.pm_durable.image()
    }

    /// Arm a crash-injection plan: the machine counts the plan's PM
    /// events and captures a [`CrashState`] after each planned ordinal,
    /// then keeps running. Replaces any previously armed plan (and
    /// discards its captures).
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.plan = Some(PlanState::new(plan));
    }

    /// Arm an elision plan: from now on the machine counts `clwb`/
    /// `clflushopt` and fence ordinals (1-based, per kind) and skips
    /// the planned ones when they are machine-level no-ops. Replaces
    /// any previously armed plan and resets its counters.
    pub fn set_elide_plan(&mut self, plan: ElidePlan) {
        self.elide = Some(ElideState::new(plan));
    }

    /// What the armed elision plan did so far (`None` when no plan is
    /// armed).
    pub fn elide_stats(&self) -> Option<ElideStats> {
        self.elide.as_ref().map(|e| e.stats)
    }

    /// Matching PM events seen since the plan was armed (0 when no
    /// plan is armed). With [`CrashPlan::probe`] this measures a run's
    /// total so sweep points can be chosen.
    pub fn crash_event_count(&self) -> u64 {
        self.plan.as_ref().map_or(0, PlanState::count)
    }

    /// Take the crash states captured so far (the plan stays armed and
    /// keeps counting).
    pub fn take_crash_states(&mut self) -> Vec<CrashState> {
        self.plan
            .as_mut()
            .map_or_else(Vec::new, PlanState::take_captured)
    }

    /// Record workload progress — by convention the number of fully
    /// committed operations. Purely volatile bookkeeping: no trace
    /// event, no clock movement; the value is stamped into each
    /// captured [`CrashState`] so a recovery oracle knows exactly which
    /// operations must have survived.
    pub fn note_progress(&mut self, ops: u64) {
        self.progress = ops;
    }

    /// The crash-decidable state right now, consuming the machine —
    /// the end-of-run analogue of a planned capture.
    pub fn into_crash_state(self) -> CrashState {
        let at = self.crash_event_count();
        let progress = self.progress;
        let (functional, durable, dirty, pending, wcbs) = self.crash_parts();
        CrashState {
            at,
            progress,
            durable: durable.image(),
            dirty: dirty
                .iter()
                .map(|s| {
                    s.lines()
                        .into_iter()
                        .map(|l| (l, *functional.line_view(l)))
                        .collect()
                })
                .collect(),
            pending,
            wcbs,
        }
    }

    /// Non-destructive [`CrashState`] snapshot (the planned-capture
    /// path; must stay bit-identical to [`Machine::into_crash_state`]).
    fn capture_crash_state(&self, at: u64) -> CrashState {
        CrashState {
            at,
            progress: self.progress,
            durable: self.pm_durable.image(),
            dirty: self
                .dirty
                .iter()
                .map(|s| {
                    s.lines()
                        .into_iter()
                        .map(|l| (l, *self.pm_functional.line_view(l)))
                        .collect()
                })
                .collect(),
            pending: self.pending.clone(),
            wcbs: self.wcb.live_entries(),
        }
    }

    /// The armed-plan hook at the end of every PM store/flush/fence
    /// path. Captures happen *after* the K-th event completes.
    fn plan_event(&mut self, ev: PlanEvent) {
        let due = match self.plan.as_mut() {
            None => return,
            Some(p) => p.advance(ev),
        };
        if let Some(at) = due {
            let state = self.capture_crash_state(at);
            self.plan
                .as_mut()
                .expect("plan checked above")
                .push_captured(state);
        }
    }

    pub(crate) fn crash_parts(self) -> CrashParts {
        let mut wcb = self.wcb;
        (
            self.pm_functional,
            self.pm_durable,
            self.dirty,
            self.pending,
            wcb.take_all_live(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn m() -> Machine {
        Machine::new(MachineConfig::tiny_for_tests())
    }

    fn pm_base(m: &Machine) -> Addr {
        m.config().map.pm.base
    }

    #[test]
    fn store_load_round_trip_pm_and_dram() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, b"pm-data", Category::UserData);
        assert_eq!(mc.load_vec(t, pa, 7), b"pm-data");
        let da = mc.alloc_dram(64, 8);
        mc.store(t, da, b"dram", Category::UserData);
        assert_eq!(mc.load_vec(t, da, 4), b"dram");
    }

    #[test]
    fn validate_tid_matches_thread_count() {
        let mc = m();
        let threads = mc.config().threads;
        for t in 0..threads {
            assert!(mc.validate_tid(Tid(t)).is_ok(), "t{t} is a real slot");
        }
        let err = mc.validate_tid(Tid(threads)).unwrap_err();
        assert_eq!(err.tid, Tid(threads));
        assert_eq!(err.threads, threads);
        let msg = err.to_string();
        assert!(
            msg.contains(&threads.to_string()),
            "error names the machine's thread count: {msg}"
        );
    }

    #[test]
    fn unfenced_store_is_not_durable() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[7; 8], Category::UserData);
        assert!(!mc.is_durable(pa, 8));
    }

    #[test]
    fn clwb_sfence_makes_durable() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[7; 8], Category::UserData);
        mc.clwb(t, pa);
        assert!(!mc.is_durable(pa, 8), "clwb alone is not durability");
        mc.sfence(t);
        assert!(mc.is_durable(pa, 8));
    }

    #[test]
    fn nt_store_durable_after_fence() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store_nt(t, pa, &[9; 16], Category::RedoLog);
        assert!(!mc.is_durable(pa, 16));
        mc.sfence(t);
        assert!(mc.is_durable(pa, 16));
    }

    #[test]
    fn wcb_overflow_drains_oldest() {
        let mut mc = m(); // wcb_entries = 2
        let t = Tid(0);
        let pa = pm_base(&mc);
        // Three NT stores to three different lines: first one drains.
        for i in 0..3u64 {
            mc.store_nt(t, pa + i * 64, &[i as u8 + 1; 8], Category::RedoLog);
        }
        assert!(mc.is_durable(pa, 8), "oldest WCB entry drained");
        assert!(!mc.is_durable(pa + 128, 8), "newest still buffered");
    }

    #[test]
    fn nt_write_combining_same_line() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store_nt(t, pa, &[1; 8], Category::RedoLog);
        mc.store_nt(t, pa + 8, &[2; 8], Category::RedoLog);
        mc.sfence(t);
        assert!(mc.is_durable(pa, 16));
        assert_eq!(mc.load_vec(t, pa, 16), [[1u8; 8], [2u8; 8]].concat());
    }

    #[test]
    fn eviction_makes_line_durable_early() {
        let mut mc = m(); // l1_dirty_lines = 4
        let t = Tid(0);
        let pa = pm_base(&mc);
        // Dirty five distinct lines: the first gets evicted (durable).
        for i in 0..5u64 {
            mc.store(t, pa + i * 64, &[i as u8 + 1; 8], Category::UserData);
        }
        assert!(
            mc.is_durable(pa, 8),
            "evicted line reached PM without a fence"
        );
        assert!(!mc.is_durable(pa + 4 * 64, 8));
    }

    #[test]
    fn sfence_only_drains_own_thread() {
        let mut mc = m();
        let pa = pm_base(&mc);
        mc.store(Tid(0), pa, &[1; 8], Category::UserData);
        mc.clwb(Tid(0), pa);
        mc.sfence(Tid(1)); // other thread's fence
        assert!(!mc.is_durable(pa, 8));
        mc.sfence(Tid(0));
        assert!(mc.is_durable(pa, 8));
    }

    #[test]
    fn clwb_of_clean_line_is_noop() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.clwb(t, pa);
        mc.sfence(t);
        assert!(mc.is_durable(pa, 8)); // all zero everywhere
    }

    #[test]
    fn clflushopt_invalidates_clwb_retains() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        // Warm the line, then clwb: a reload is still a cache hit.
        mc.load_vec(t, pa, 8);
        mc.clwb(t, pa);
        mc.sfence(t);
        let misses_before = mc.stats().pm_reads;
        mc.load_vec(t, pa, 8);
        assert_eq!(mc.stats().pm_reads, misses_before, "clwb retains the line");
        // clflushopt evicts: the reload misses.
        mc.clflushopt(t, pa);
        mc.sfence(t);
        mc.load_vec(t, pa, 8);
        assert_eq!(
            mc.stats().pm_reads,
            misses_before + 1,
            "clflushopt invalidates"
        );
    }

    #[test]
    fn clwb_snapshot_semantics() {
        // Value at clwb time is what the fence persists; a later
        // unflushed store stays volatile.
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[1; 8], Category::UserData);
        mc.clwb(t, pa);
        mc.store(t, pa, &[2; 8], Category::UserData);
        mc.sfence(t);
        let durable = mc.durable_image().read_vec(pa, 8);
        assert_eq!(durable, vec![1; 8]);
        assert_eq!(mc.load_vec(t, pa, 8), vec![2; 8]);
    }

    #[test]
    fn trace_records_stores_and_fences() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[1; 8], Category::UserData);
        mc.clwb(t, pa);
        mc.sfence(t);
        let ev = mc.trace().events();
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn dram_stores_not_traced() {
        let mut mc = m();
        let t = Tid(0);
        let da = mc.alloc_dram(64, 64);
        mc.store(t, da, &[1; 8], Category::UserData);
        assert!(mc.trace().is_empty());
        assert_eq!(mc.stats().dram_accesses, 1);
    }

    #[test]
    fn stats_count_memory_traffic_not_cache_hits() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, &[0; 128], Category::UserData); // 2 lines, dirty
        assert_eq!(mc.stats().pm_writes, 0, "nothing persisted yet");
        mc.load_vec(t, pa, 64); // dirty line: cache hit
        assert_eq!(mc.stats().pm_reads, 0);
        // A cold line misses once, then hits.
        mc.load_vec(t, pa + 4096, 8);
        mc.load_vec(t, pa + 4096, 8);
        assert_eq!(mc.stats().pm_reads, 1);
        // Persisting the dirty lines is what counts as PM writes.
        mc.clwb(t, pa);
        mc.clwb(t, pa + 64);
        mc.sfence(t);
        assert_eq!(mc.stats().pm_writes, 2);
    }

    #[test]
    fn dram_bulk_counts_and_advances() {
        let mut mc = m();
        let t0 = mc.now_ns();
        mc.dram_bulk(Tid(0), 1000);
        assert_eq!(mc.stats().dram_accesses, 1000);
        assert_eq!(mc.now_ns() - t0, 1000);
    }

    #[test]
    fn clock_advances() {
        let mut mc = m();
        let t = Tid(0);
        let t0 = mc.now_ns();
        mc.store(t, pm_base(&mc), &[1; 8], Category::UserData);
        assert!(mc.now_ns() > t0);
        let t1 = mc.now_ns();
        mc.advance_ns(100);
        assert_eq!(mc.now_ns(), t1 + 100);
    }

    #[test]
    fn from_image_restores_pm() {
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.store(t, pa, b"saved", Category::UserData);
        mc.clwb(t, pa);
        mc.sfence(t);
        let img = mc.durable_image();
        let mut mc2 = Machine::from_image(MachineConfig::tiny_for_tests(), &img);
        assert_eq!(mc2.load_vec(Tid(0), pa, 5), b"saved");
        assert!(mc2.is_durable(pa, 5));
    }

    #[test]
    fn fresh_tx_ids_are_per_thread_monotone() {
        let mut mc = m();
        assert_eq!(mc.fresh_tx_id(Tid(0)), 1);
        assert_eq!(mc.fresh_tx_id(Tid(0)), 2);
        assert_eq!(mc.fresh_tx_id(Tid(1)), 1);
    }

    #[test]
    fn elide_plan_skips_noop_flush_and_fence() {
        use crate::elide::ElidePlan;
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        // Flush ordinal 2 re-flushes a durable line; fence ordinal 2
        // retires nothing. Both are pure overhead and get skipped.
        mc.set_elide_plan(ElidePlan::new([2], [2]));
        mc.store(t, pa, &[7; 8], Category::UserData);
        mc.clwb(t, pa); // ordinal 1: executes
        mc.sfence(t); // ordinal 1: executes, persists
        let clock_before = mc.now_ns();
        let writes_before = mc.stats().pm_writes;
        let trace_before = mc.trace().events().len();
        mc.clwb(t, pa); // ordinal 2: durable line, elided
        mc.sfence(t); // ordinal 2: nothing pending, elided
        assert_eq!(mc.now_ns(), clock_before, "elided ops cost nothing");
        assert_eq!(mc.stats().pm_writes, writes_before);
        assert_eq!(mc.trace().events().len(), trace_before, "not traced");
        assert!(mc.is_durable(pa, 8));
        let stats = mc.elide_stats().expect("armed");
        assert_eq!((stats.flushes_elided, stats.fences_elided), (1, 1));
        assert_eq!(stats.veto_total(), 0);
    }

    #[test]
    fn elide_plan_vetoes_load_bearing_sites() {
        use crate::elide::ElidePlan;
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        // Plan to skip the only flush and fence covering a real store:
        // the machine must refuse both, keeping the data durable.
        mc.set_elide_plan(ElidePlan::new([1], [1]));
        mc.store(t, pa, &[9; 8], Category::UserData);
        mc.clwb(t, pa); // dirty line: vetoed, executes
        mc.sfence(t); // pending snapshot: vetoed, executes
        assert!(mc.is_durable(pa, 8), "vetoes preserved durability");
        let stats = mc.elide_stats().expect("armed");
        assert_eq!((stats.flush_vetoes, stats.fence_vetoes), (1, 1));
        assert_eq!(stats.elided_total(), 0);
    }

    #[test]
    fn elided_fence_counts_toward_no_crash_plan_event() {
        use crate::crash::{CrashCounter, CrashPlan};
        use crate::elide::ElidePlan;
        let mut mc = m();
        let t = Tid(0);
        let pa = pm_base(&mc);
        mc.set_crash_plan(CrashPlan::probe(CrashCounter::Fences));
        mc.set_elide_plan(ElidePlan::new([], [2]));
        mc.store(t, pa, &[1; 8], Category::UserData);
        mc.clwb(t, pa);
        mc.sfence(t); // counted
        mc.sfence(t); // elided: not counted
        mc.sfence(t); // counted
        assert_eq!(mc.crash_event_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_tid_panics() {
        let mut mc = m();
        mc.sfence(Tid(99));
    }

    #[test]
    #[should_panic(expected = "outside memory map")]
    fn unmapped_access_panics() {
        let mut mc = m();
        let end = mc.config().map.pm.end();
        mc.load_vec(Tid(0), end, 8);
    }

    #[test]
    #[should_panic(expected = "PM only")]
    fn nt_store_to_dram_panics() {
        let mut mc = m();
        let da = mc.alloc_dram(64, 64);
        mc.store_nt(Tid(0), da, &[1; 8], Category::UserData);
    }

    #[test]
    fn alloc_dram_aligns() {
        let mut mc = m();
        let a = mc.alloc_dram(10, 64);
        let b = mc.alloc_dram(10, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
    }
}
