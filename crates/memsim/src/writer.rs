//! The epoch-writing idiom used by all WHISPER access layers.

use crate::machine::Machine;
use pmem::{lines_spanning, Addr, Line};
use pmtrace::{Category, Tid};
use std::collections::BTreeSet;

/// Tracks the cache lines written since the last ordering point and
/// turns them into a correct `clwb…; sfence` sequence.
///
/// This encapsulates the "assembly-language style of programming" the
/// paper describes for native persistence (Section 2): after a group of
/// PM stores, *every* line they touched must be flushed individually
/// before the fence — and "if an object spans multiple cache lines, the
/// programmer must flush each individual cache line". `PmWriter` is the
/// programmer who never forgets one.
///
/// Non-temporal writes need no flush (they bypass the cache) but still
/// require the fence to drain the write-combining buffer.
///
/// # Example
///
/// ```
/// use memsim::{Machine, MachineConfig, PmWriter};
/// use pmtrace::{Category, Tid};
///
/// let mut m = Machine::new(MachineConfig::asplos17());
/// let mut w = PmWriter::new(Tid(0));
/// let a = m.config().map.pm.base;
/// w.write(&mut m, a, &[1u8; 100], Category::UserData); // 2+ lines
/// w.ordering_fence(&mut m); // clwb per line + sfence
/// assert!(m.is_durable(a, 100));
/// ```
#[derive(Debug, Clone)]
pub struct PmWriter {
    tid: Tid,
    to_flush: BTreeSet<Line>,
}

impl PmWriter {
    /// A writer for thread `tid` with no pending lines.
    pub fn new(tid: Tid) -> PmWriter {
        PmWriter {
            tid,
            to_flush: BTreeSet::new(),
        }
    }

    /// The thread this writer issues on.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Cacheable PM store; the touched lines are remembered for the
    /// next fence.
    pub fn write(&mut self, m: &mut Machine, addr: Addr, bytes: &[u8], cat: Category) {
        m.store(self.tid, addr, bytes, cat);
        for (line, _, _) in lines_spanning(addr, bytes.len()) {
            self.to_flush.insert(line);
        }
    }

    /// Cacheable little-endian `u64` store.
    pub fn write_u64(&mut self, m: &mut Machine, addr: Addr, val: u64, cat: Category) {
        self.write(m, addr, &val.to_le_bytes(), cat);
    }

    /// Cacheable little-endian `u32` store.
    pub fn write_u32(&mut self, m: &mut Machine, addr: Addr, val: u32, cat: Category) {
        self.write(m, addr, &val.to_le_bytes(), cat);
    }

    /// Non-temporal PM store (no flush needed; drained by the fence).
    pub fn write_nt(&mut self, m: &mut Machine, addr: Addr, bytes: &[u8], cat: Category) {
        m.store_nt(self.tid, addr, bytes, cat);
    }

    /// Number of lines awaiting a flush.
    pub fn pending_lines(&self) -> usize {
        self.to_flush.len()
    }

    fn flush_all(&mut self, m: &mut Machine) {
        for line in std::mem::take(&mut self.to_flush) {
            m.clwb(self.tid, line.base());
        }
    }

    /// End the epoch: flush every written line, then `sfence`.
    ///
    /// On current x86-64 this is the only way to order PM writes, and it
    /// conflates ordering with durability — the inefficiency HOPS's
    /// `ofence` removes (Section 6).
    pub fn ordering_fence(&mut self, m: &mut Machine) {
        self.flush_all(m);
        m.sfence(self.tid);
    }

    /// End the epoch at a point where the program *needs* durability
    /// (transaction commit, pre-I/O). Machine-identical to
    /// [`PmWriter::ordering_fence`]; traced as a durability fence.
    pub fn durability_fence(&mut self, m: &mut Machine) {
        self.flush_all(m);
        m.sfence_durable(self.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use pmtrace::analysis::split_epochs;

    fn setup() -> (Machine, PmWriter, Addr) {
        let m = Machine::new(MachineConfig::tiny_for_tests());
        let base = m.config().map.pm.base;
        (m, PmWriter::new(Tid(0)), base)
    }

    #[test]
    fn multi_line_object_fully_flushed() {
        let (mut m, mut w, a) = setup();
        w.write(&mut m, a, &[3u8; 200], Category::UserData); // 4 lines
        assert_eq!(w.pending_lines(), 4);
        w.ordering_fence(&mut m);
        assert_eq!(w.pending_lines(), 0);
        assert!(m.is_durable(a, 200));
    }

    #[test]
    fn nt_write_durable_after_fence_without_flushes() {
        let (mut m, mut w, a) = setup();
        w.write_nt(&mut m, a, &[5u8; 64], Category::RedoLog);
        assert_eq!(w.pending_lines(), 0);
        w.ordering_fence(&mut m);
        assert!(m.is_durable(a, 64));
    }

    #[test]
    fn epochs_match_fences() {
        let (mut m, mut w, a) = setup();
        w.write_u64(&mut m, a, 1, Category::UserData);
        w.ordering_fence(&mut m);
        w.write_u64(&mut m, a + 64, 2, Category::UserData);
        w.write_u64(&mut m, a + 128, 3, Category::UserData);
        w.durability_fence(&mut m);
        let epochs = split_epochs(m.trace().events());
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].unique_lines(), 1);
        assert!(!epochs[0].durable);
        assert_eq!(epochs[1].unique_lines(), 2);
        assert!(epochs[1].durable);
    }

    #[test]
    fn same_line_written_twice_flushed_once() {
        let (mut m, mut w, a) = setup();
        w.write_u64(&mut m, a, 1, Category::UserData);
        w.write_u64(&mut m, a + 8, 2, Category::UserData);
        assert_eq!(w.pending_lines(), 1);
        w.ordering_fence(&mut m);
        let flushes = m
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, pmtrace::EventKind::Flush { .. }))
            .count();
        assert_eq!(flushes, 1);
    }

    #[test]
    fn writes_survive_crash_after_fence() {
        let (mut m, mut w, a) = setup();
        w.write(&mut m, a, b"critical", Category::UserData);
        w.durability_fence(&mut m);
        let img = m.crash(crate::CrashSpec::DropVolatile);
        assert_eq!(img.read_vec(a, 8), b"critical");
    }
}
