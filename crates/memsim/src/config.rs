//! Machine configuration.

use pmem::AddressMap;

/// Simulated core clock in Hz (4 GHz, 0.25 ns per cycle — the rate at
/// which [`Latency`] expresses Table 3's cycle counts as nanoseconds).
/// Everything on the `sim.*` clock domain, including the serving
/// engine's offered-load ↔ interarrival conversions, uses this rate.
pub const SIM_CLOCK_HZ: u64 = 4_000_000_000;

/// Nanoseconds per second on the simulated clock — the conversion
/// factor between request rates (req/s) and interarrival gaps (ns).
pub const SIM_NS_PER_SEC: u64 = 1_000_000_000;

/// Operation latencies in simulated nanoseconds.
///
/// The paper's gem5 system (Table 3) runs 4-core 2 GHz x86 with 40-cycle
/// DRAM and 160-cycle PM read/write latency; the trace machine is a
/// 4 GHz Skylake. We use a 4 GHz clock (0.25 ns/cycle) so Table 3's
/// numbers become DRAM 10 ns, PM 40 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Latency {
    /// An L1 cache hit (load or store).
    pub l1_hit_ns: u64,
    /// A DRAM access on an L1 miss.
    pub dram_ns: u64,
    /// A PM read on an L1 miss.
    pub pm_read_ns: u64,
    /// Writing one line to the PM device (the durability cost).
    pub pm_write_ns: u64,
    /// Base cost of an `sfence` with nothing outstanding.
    pub sfence_ns: u64,
    /// Issue cost of a `clwb`/`clflushopt` (the writeback itself is
    /// charged at the fence that awaits it).
    pub clwb_issue_ns: u64,
}

impl Latency {
    /// Latencies matching the paper's simulated system (Table 3) at
    /// 4 GHz.
    pub fn asplos17() -> Latency {
        Latency {
            l1_hit_ns: 1,
            dram_ns: 10,
            pm_read_ns: 40,
            pm_write_ns: 40,
            sfence_ns: 5,
            clwb_issue_ns: 2,
        }
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::asplos17()
    }
}

/// Full configuration of a simulated [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Physical address map (DRAM + PM ranges).
    pub map: AddressMap,
    /// Number of hardware threads (the paper simulates 4 cores × 1 HW
    /// thread).
    pub threads: u32,
    /// Per-thread L1 capacity in 64 B lines used for *dirty PM line*
    /// tracking. When exceeded, the least-recently-written dirty line is
    /// evicted and becomes durable — modeling cache-driven reordering.
    pub l1_dirty_lines: usize,
    /// Write-combining buffer entries per thread; non-temporal stores
    /// drain (become durable) when the buffer is full or at a fence.
    pub wcb_entries: usize,
    /// Per-thread capacity, in lines, of the clean-PM-line reference
    /// cache (models the private L1+L2 of Table 3 for deciding whether
    /// a PM load is memory traffic).
    pub l2_lines: usize,
    /// Operation latencies.
    pub lat: Latency,
}

impl MachineConfig {
    /// The paper's simulated system: 4 threads, Table 3 latencies,
    /// 512 dirty-trackable lines (32 KB of dirty PM data) per L1, and a
    /// 8-entry write-combining buffer, matching commodity x86.
    pub fn asplos17() -> MachineConfig {
        MachineConfig {
            map: AddressMap::asplos17(),
            threads: 4,
            l1_dirty_lines: 512,
            wcb_entries: 8,
            l2_lines: 32_768, // 2 MB private L2 (Table 3)
            lat: Latency::asplos17(),
        }
    }

    /// A tiny configuration for unit tests: frequent evictions and WCB
    /// drains so edge paths are exercised.
    pub fn tiny_for_tests() -> MachineConfig {
        MachineConfig {
            map: AddressMap::asplos17(),
            threads: 4,
            l1_dirty_lines: 4,
            wcb_entries: 2,
            l2_lines: 8,
            lat: Latency::asplos17(),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::asplos17()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asplos17_matches_table3_at_4ghz() {
        let l = Latency::asplos17();
        // 40 cycles @ 4 GHz = 10 ns; 160 cycles = 40 ns.
        assert_eq!(l.dram_ns, 10);
        assert_eq!(l.pm_read_ns, 40);
        assert_eq!(l.pm_write_ns, 40);
        let c = MachineConfig::asplos17();
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn default_is_asplos17() {
        assert_eq!(MachineConfig::default(), MachineConfig::asplos17());
    }
}
