//! Property tests for the persistence-instruction semantics.

use memsim::{CrashSpec, Machine, MachineConfig, PmWriter};
use miniprop::prelude::*;
use pmtrace::{Category, Tid};

const TID: Tid = Tid(0);

#[derive(Debug, Clone)]
enum MemOp {
    Store { slot: u64, val: u8 },
    StoreNt { slot: u64, val: u8 },
    FlushFence,
}

fn scripts() -> impl Strategy<Value = Vec<MemOp>> {
    collection::vec(
        prop_oneof![
            (0u64..64, any::<u8>()).prop_map(|(slot, val)| MemOp::Store { slot, val }),
            (0u64..64, any::<u8>()).prop_map(|(slot, val)| MemOp::StoreNt { slot, val }),
            Just(MemOp::FlushFence),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fenced writes always survive DropVolatile; PersistAll equals the
    /// functional state; Adversarial lands linewise between the two.
    #[test]
    fn crash_lattice(script in scripts(), seed in any::<u64>()) {
        // Run the same script on three machines, crash each mode.
        // admissible[slot] tracks the values that were "current" at or
        // after the slot's last fence — exactly the set the hardware
        // may leave durable (the fence pins a floor; later drains and
        // evictions only move forward).
        let run = || {
            let mut m = Machine::new(MachineConfig::tiny_for_tests());
            let base = m.config().map.pm.base;
            let mut w = PmWriter::new(TID);
            let mut admissible: Vec<std::collections::HashSet<u8>> =
                (0..64).map(|_| [0u8].into_iter().collect()).collect();
            let mut latest = [None::<u8>; 64];
            for op in &script {
                match op {
                    MemOp::Store { slot, val } | MemOp::StoreNt { slot, val } => {
                        match op {
                            MemOp::Store { .. } => {
                                w.write(&mut m, base + slot * 64, &[*val; 8], Category::UserData);
                            }
                            _ => w.write_nt(&mut m, base + slot * 64, &[*val; 8], Category::UserData),
                        }
                        latest[*slot as usize] = Some(*val);
                        admissible[*slot as usize].insert(*val);
                    }
                    MemOp::FlushFence => {
                        w.durability_fence(&mut m);
                        // The fence pins each written slot at its newest
                        // value: older values can no longer surface.
                        for slot in 0..64usize {
                            if let Some(l) = latest[slot] {
                                admissible[slot] = [l].into_iter().collect();
                            }
                        }
                    }
                }
            }
            (m, base, admissible, latest)
        };

        // DropVolatile: every durable value was current at or after the
        // slot's last fence.
        let (m, base, admissible, _) = run();
        let img = m.crash(CrashSpec::DropVolatile);
        for slot in 0..64u64 {
            let got = img.read_vec(base + slot * 64, 1)[0];
            prop_assert!(
                admissible[slot as usize].contains(&got),
                "slot {}: durable {} predates the last fence ({:?})",
                slot, got, admissible[slot as usize]
            );
        }

        // PersistAll: always the newest values.
        let (m, base, _, latest) = run();
        let img = m.crash(CrashSpec::PersistAll);
        for slot in 0..64u64 {
            let got = img.read_vec(base + slot * 64, 1)[0];
            prop_assert_eq!(got, latest[slot as usize].unwrap_or(0));
        }

        // Adversarial: every durable value is admissible too (adversity
        // chooses among in-flight lines, never invents values or
        // resurrects pre-fence ones).
        let (m, base, admissible, _) = run();
        let img = m.crash(CrashSpec::Adversarial { seed });
        for slot in 0..64u64 {
            let got = img.read_vec(base + slot * 64, 1)[0];
            prop_assert!(
                admissible[slot as usize].contains(&got),
                "slot {}: impossible value {}",
                slot, got
            );
        }
    }

    /// Functional reads always see the latest store, regardless of
    /// flush/fence activity.
    #[test]
    fn functional_state_is_always_current(script in scripts()) {
        let mut m = Machine::new(MachineConfig::tiny_for_tests());
        let base = m.config().map.pm.base;
        let mut w = PmWriter::new(TID);
        let mut latest = [0u8; 64];
        for op in &script {
            match op {
                MemOp::Store { slot, val } => {
                    w.write(&mut m, base + slot * 64, &[*val; 8], Category::UserData);
                    latest[*slot as usize] = *val;
                }
                MemOp::StoreNt { slot, val } => {
                    w.write_nt(&mut m, base + slot * 64, &[*val; 8], Category::UserData);
                    latest[*slot as usize] = *val;
                }
                MemOp::FlushFence => w.durability_fence(&mut m),
            }
            for slot in 0..64u64 {
                prop_assert_eq!(
                    m.load_vec(TID, base + slot * 64, 1)[0],
                    latest[slot as usize]
                );
            }
        }
    }

    /// The trace records exactly the PM stores and fences issued.
    #[test]
    fn trace_completeness(script in scripts()) {
        let mut m = Machine::new(MachineConfig::tiny_for_tests());
        let base = m.config().map.pm.base;
        let mut w = PmWriter::new(TID);
        let mut stores = 0usize;
        let mut fences = 0usize;
        for op in &script {
            match op {
                MemOp::Store { slot, val } => {
                    w.write(&mut m, base + slot * 64, &[*val; 8], Category::UserData);
                    stores += 1;
                }
                MemOp::StoreNt { slot, val } => {
                    w.write_nt(&mut m, base + slot * 64, &[*val; 8], Category::UserData);
                    stores += 1;
                }
                MemOp::FlushFence => {
                    w.durability_fence(&mut m);
                    fences += 1;
                }
            }
        }
        let got_stores = m
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, pmtrace::EventKind::PmStore { .. }))
            .count();
        let got_fences = m
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, pmtrace::EventKind::Fence | pmtrace::EventKind::DFence))
            .count();
        prop_assert_eq!(got_stores, stores);
        prop_assert_eq!(got_fences, fences);
        // Timestamps are monotone.
        let ts: Vec<u64> = m.trace().events().iter().map(|e| e.at_ns).collect();
        prop_assert!(ts.windows(2).all(|p| p[0] <= p[1]));
    }
}
