//! Property tests for the happens-before engine (`pmcheck::hb`).
//!
//! Checked over random small traces: the HB relation is a strict
//! partial order (irreflexive, antisymmetric, transitive), it always
//! contains per-thread program order, and the vector-clock comparison
//! agrees exactly with reachability over the explicit edge list
//! (program order + release→acquire) the recording engine emits.

use miniprop::prelude::*;
use pmcheck::hb::HbIndex;
use pmtrace::{Category, Event, Tid, TraceBuffer};

#[derive(Debug, Clone, Copy)]
enum TraceOp {
    Store { tid: u8, slot: u8, nt: bool },
    Load { tid: u8, slot: u8 },
    Flush { tid: u8, slot: u8 },
    Fence { tid: u8, durable: bool },
    TxToggle { tid: u8 },
}

fn ops() -> impl Strategy<Value = Vec<TraceOp>> {
    collection::vec(
        prop_oneof![
            (0u8..3, 0u8..6, any::<bool>()).prop_map(|(tid, slot, nt)| TraceOp::Store {
                tid,
                slot,
                nt
            }),
            (0u8..3, 0u8..6).prop_map(|(tid, slot)| TraceOp::Load { tid, slot }),
            (0u8..3, 0u8..6).prop_map(|(tid, slot)| TraceOp::Flush { tid, slot }),
            (0u8..3, any::<bool>()).prop_map(|(tid, durable)| TraceOp::Fence { tid, durable }),
            (0u8..3).prop_map(|tid| TraceOp::TxToggle { tid }),
        ],
        0..40,
    )
}

fn build(ops: &[TraceOp]) -> Vec<Event> {
    let mut t = TraceBuffer::new();
    let mut now = 0u64;
    let mut open_tx = [None::<u64>; 3];
    let mut next_tx = 1u64;
    for op in ops {
        now += 2;
        match *op {
            TraceOp::Store { tid, slot, nt } => {
                t.pm_store(
                    Tid(tid as u32),
                    slot as u64 * 64,
                    8,
                    nt,
                    Category::UserData,
                    now,
                );
            }
            TraceOp::Load { tid, slot } => t.pm_load(Tid(tid as u32), slot as u64 * 64, now),
            TraceOp::Flush { tid, slot } => t.flush(Tid(tid as u32), slot as u64 * 64, now),
            TraceOp::Fence { tid, durable } => {
                if durable {
                    t.dfence(Tid(tid as u32), now);
                } else {
                    t.fence(Tid(tid as u32), now);
                }
            }
            TraceOp::TxToggle { tid } => {
                let slot = &mut open_tx[tid as usize];
                match slot.take() {
                    Some(id) => t.tx_end(Tid(tid as u32), id, now),
                    None => {
                        t.tx_begin(Tid(tid as u32), next_tx, now);
                        *slot = Some(next_tx);
                        next_tx += 1;
                    }
                }
            }
        }
    }
    t.into_events()
}

/// `reach[a][b]` ⇔ `b` is reachable from `a` over the explicit HB
/// edges (one or more hops) — the ground truth the clocks summarize.
fn reachability(idx: &HbIndex) -> Vec<Vec<bool>> {
    let n = idx.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in idx.edges() {
        adj[*a as usize].push(*b as usize);
    }
    let mut reach = vec![vec![false; n]; n];
    for start in 0..n {
        let mut stack: Vec<usize> = adj[start].clone();
        while let Some(v) = stack.pop() {
            if !reach[start][v] {
                reach[start][v] = true;
                stack.extend(adj[v].iter().copied());
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Irreflexive and antisymmetric: no event precedes itself, and no
    /// two events precede each other.
    #[test]
    fn hb_is_irreflexive_and_antisymmetric(ops in ops()) {
        let events = build(&ops);
        let idx = HbIndex::of(&events);
        for a in 0..idx.len() {
            prop_assert!(!idx.happens_before(a, a), "event {a} precedes itself");
            for b in (a + 1)..idx.len() {
                prop_assert!(
                    !(idx.happens_before(a, b) && idx.happens_before(b, a)),
                    "events {a} and {b} precede each other"
                );
            }
        }
    }

    /// Transitive: a ≺ b and b ≺ c imply a ≺ c.
    #[test]
    fn hb_is_transitive(ops in ops()) {
        let events = build(&ops);
        let idx = HbIndex::of(&events);
        let n = idx.len();
        for a in 0..n {
            for b in 0..n {
                if !idx.happens_before(a, b) {
                    continue;
                }
                for c in 0..n {
                    if idx.happens_before(b, c) {
                        prop_assert!(
                            idx.happens_before(a, c),
                            "{a} ≺ {b} ≺ {c} but not {a} ≺ {c}"
                        );
                    }
                }
            }
        }
    }

    /// Per-thread program order is always contained in HB.
    #[test]
    fn hb_contains_program_order(ops in ops()) {
        let events = build(&ops);
        let idx = HbIndex::of(&events);
        for a in 0..events.len() {
            for b in (a + 1)..events.len() {
                if events[a].tid == events[b].tid {
                    prop_assert!(
                        idx.happens_before(a, b),
                        "program order {a} → {b} (tid {}) lost",
                        events[a].tid
                    );
                }
            }
        }
    }

    /// The vector-clock comparison agrees with edge-reachability on
    /// every pair: the clocks are a sound *and* complete summary of
    /// the explicit ordering edges.
    #[test]
    fn hb_clocks_agree_with_edge_reachability(ops in ops()) {
        let events = build(&ops);
        let idx = HbIndex::of(&events);
        let reach = reachability(&idx);
        for (a, row) in reach.iter().enumerate() {
            for (b, &reachable) in row.iter().enumerate() {
                if a == b {
                    continue;
                }
                prop_assert_eq!(
                    idx.happens_before(a, b),
                    reachable,
                    "clock vs reachability disagree on ({}, {})", a, b
                );
            }
        }
    }

    /// HB never orders two events of different threads with no
    /// communication: a trace with thread-disjoint lines and no
    /// cross-thread release keeps the threads fully concurrent.
    #[test]
    fn hb_orders_nothing_without_communication(
        n0 in 1usize..6, n1 in 1usize..6
    ) {
        let mut t = TraceBuffer::new();
        let mut now = 0;
        for i in 0..n0 {
            now += 2;
            t.pm_store(Tid(0), i as u64 * 64, 8, false, Category::UserData, now);
            now += 2;
            t.fence(Tid(0), now);
        }
        for i in 0..n1 {
            now += 2;
            t.pm_store(Tid(1), 4096 + i as u64 * 64, 8, false, Category::UserData, now);
            now += 2;
            t.fence(Tid(1), now);
        }
        let evs = t.into_events();
        let idx = HbIndex::of(&evs);
        for a in 0..evs.len() {
            for b in 0..evs.len() {
                if evs[a].tid != evs[b].tid {
                    prop_assert!(
                        !idx.happens_before(a, b),
                        "disjoint threads ordered: {a} ≺ {b}"
                    );
                }
            }
        }
    }
}
