//! Property and pinning tests for the ordering optimizer
//! (`pmcheck::rewrite`).
//!
//! The properties the crash campaign relies on, checked over random
//! traces: the rewrite is idempotent, it only ever removes
//! flush/fence events (never a store or tx marker the crash counter
//! or another rule depends on), and it preserves every error-severity
//! finding. The pinning test fixes the exact elision counts for the
//! seeded buggy-log trace so optimizer coverage changes are loud.

use miniprop::prelude::*;
use pmcheck::{check_events, rewrite::rewrite_events, seeded, Rule, Severity};
use pmtrace::{Category, Event, EventKind, Tid, TraceBuffer};

#[derive(Debug, Clone, Copy)]
enum TraceOp {
    Store { tid: u8, slot: u8, nt: bool },
    Flush { tid: u8, slot: u8 },
    Fence { tid: u8, durable: bool },
    TxToggle { tid: u8 },
}

fn ops() -> impl Strategy<Value = Vec<TraceOp>> {
    collection::vec(
        prop_oneof![
            (0u8..3, 0u8..6, any::<bool>()).prop_map(|(tid, slot, nt)| TraceOp::Store {
                tid,
                slot,
                nt
            }),
            (0u8..3, 0u8..6).prop_map(|(tid, slot)| TraceOp::Flush { tid, slot }),
            (0u8..3, any::<bool>()).prop_map(|(tid, durable)| TraceOp::Fence { tid, durable }),
            (0u8..3).prop_map(|tid| TraceOp::TxToggle { tid }),
        ],
        0..60,
    )
}

fn build(ops: &[TraceOp]) -> Vec<Event> {
    let mut t = TraceBuffer::new();
    let mut now = 0u64;
    let mut open_tx = [None::<u64>; 3];
    let mut next_tx = 1u64;
    for op in ops {
        now += 2;
        match *op {
            TraceOp::Store { tid, slot, nt } => {
                t.pm_store(
                    Tid(tid as u32),
                    slot as u64 * 64,
                    8,
                    nt,
                    Category::UserData,
                    now,
                );
            }
            TraceOp::Flush { tid, slot } => t.flush(Tid(tid as u32), slot as u64 * 64, now),
            TraceOp::Fence { tid, durable } => {
                if durable {
                    t.dfence(Tid(tid as u32), now);
                } else {
                    t.fence(Tid(tid as u32), now);
                }
            }
            TraceOp::TxToggle { tid } => {
                let slot = &mut open_tx[tid as usize];
                match slot.take() {
                    Some(id) => t.tx_end(Tid(tid as u32), id, now),
                    None => {
                        t.tx_begin(Tid(tid as u32), next_tx, now);
                        *slot = Some(next_tx);
                        next_tx += 1;
                    }
                }
            }
        }
    }
    t.into_events()
}

/// (rule, tid, at_ns, line) for every error finding — the identity of
/// an error minus its (rewrite-shifted) event index.
fn error_keys(events: &[Event]) -> Vec<(Rule, Tid, u64, Option<pmem::Line>)> {
    check_events(events)
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| (f.rule, f.tid, f.at_ns, f.line))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimizing an optimized trace elides nothing.
    #[test]
    fn rewrite_is_idempotent(ops in ops()) {
        let events = build(&ops);
        let first = rewrite_events(&events);
        let second = rewrite_events(&first.events);
        prop_assert_eq!(second.elided.len(), 0, "second pass elided {:?}", second.elided);
        prop_assert_eq!(&second.events, &first.events);
        prop_assert_eq!(second.rounds, 1);
    }

    /// The fixpoint trace is clean of both flagged rules.
    #[test]
    fn rewritten_trace_has_no_elidable_findings(ops in ops()) {
        let events = build(&ops);
        let r = rewrite_events(&events);
        let after = check_events(&r.events);
        prop_assert_eq!(after.count(Rule::RedundantFlush), 0);
        prop_assert_eq!(after.count(Rule::DoubleFence), 0);
    }

    /// Only flush/fence events are ever removed: every store and tx
    /// marker — everything the crash counter and the other rules
    /// anchor on — survives, in order, and the survivors are exactly
    /// the original trace minus the reported elision indices.
    #[test]
    fn rewrite_never_removes_a_depended_on_event(ops in ops()) {
        let events = build(&ops);
        let r = rewrite_events(&events);
        for &i in &r.elided {
            prop_assert!(matches!(
                events[i].kind,
                EventKind::Flush { .. } | EventKind::Fence | EventKind::DFence
            ), "elided a {:?}", events[i].kind);
        }
        prop_assert_eq!(
            &r.events,
            &pmtrace::transform::elide_indices(&events, &r.elided)
        );
        let count = |evs: &[Event], pred: fn(&EventKind) -> bool| {
            evs.iter().filter(|e| pred(&e.kind)).count()
        };
        let anchors = |k: &EventKind| matches!(
            k,
            EventKind::PmStore { .. } | EventKind::TxBegin { .. } | EventKind::TxEnd { .. }
        );
        prop_assert_eq!(count(&r.events, anchors), count(&events, anchors));
    }

    /// Elision is warn-only surgery: every error-severity finding of
    /// the original trace survives unchanged (same rule, thread,
    /// timestamp, line), and no new error appears.
    #[test]
    fn rewrite_preserves_every_error(ops in ops()) {
        let events = build(&ops);
        let r = rewrite_events(&events);
        prop_assert_eq!(error_keys(&r.events), error_keys(&events));
    }
}

#[test]
fn seeded_buggy_log_elision_counts_are_pinned() {
    // The seeded trace plants two P-REDUNDANT-FLUSH sites (indices 29
    // and 33: the clean-line flush at 70 ns and the durable re-flush
    // at 78 ns) and one P-DOUBLE-FENCE (index 35, the fence at 82 ns).
    // Round 1 elides those three; with the re-flush gone, thread 1's
    // fence at 80 ns (index 34) closes an empty epoch and cascades out
    // in round 2; round 3 is the clean fixpoint pass.
    let events = seeded::buggy_log_events();
    let r = rewrite_events(&events);
    assert_eq!(r.elided_flushes, 2);
    assert_eq!(r.elided_fences, 2);
    assert_eq!(r.elided, vec![29, 33, 34, 35]);
    assert_eq!(r.rounds, 3);
    assert_eq!(r.events.len(), events.len() - 4);

    // The rewritten trace is clean of the elided rules but keeps every
    // planted error: the optimizer fixes performance bugs, not
    // correctness bugs.
    let after = check_events(&r.events);
    assert_eq!(after.count(Rule::RedundantFlush), 0);
    assert_eq!(after.count(Rule::DoubleFence), 0);
    assert_eq!(after.errors(), seeded::EXPECTED_ERRORS);
}
