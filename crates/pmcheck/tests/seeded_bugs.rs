//! The acceptance gate for the checker itself: every rule fires on the
//! seeded buggy-log trace with exactly the planted counts, and the
//! checker is single-pass.

use pmcheck::{check_events, seeded, Checker, Rule, Severity};

#[test]
fn every_rule_fires_with_exact_counts() {
    let events = seeded::buggy_log_events();
    let report = check_events(&events);

    for (rule, errors, warns) in seeded::EXPECTED {
        let got_errors = report
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.severity == Severity::Error)
            .count();
        let got_warns = report
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.severity == Severity::Warn)
            .count();
        assert_eq!(
            (got_errors, got_warns),
            (errors, warns),
            "{}: expected {errors} error(s) + {warns} warning(s), findings: {:#?}",
            rule.id(),
            report.findings
        );
    }
    assert_eq!(report.errors(), seeded::EXPECTED_ERRORS);
    assert_eq!(report.warnings(), seeded::EXPECTED_WARNINGS);
    assert_eq!(
        report.findings.len(),
        seeded::EXPECTED_ERRORS + seeded::EXPECTED_WARNINGS,
        "no unplanned findings"
    );
}

#[test]
fn rule_ids_are_the_documented_strings() {
    let report = check_events(&seeded::buggy_log_events());
    let mut seen: Vec<&str> = report.findings.iter().map(|f| f.rule.id()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        vec![
            "P-CROSS-DEP",
            "P-DOUBLE-FENCE",
            "P-EPOCH-RACE",
            "P-RECOVERY-READ",
            "P-REDUNDANT-FLUSH",
            "P-TX-ATOMICITY",
            "P-UNFLUSHED",
            "P-UNORDERED",
        ]
    );
}

#[test]
fn checker_is_single_pass() {
    // The event-visit counter equals the trace length: each event is
    // folded exactly once, with no second traversal or replay.
    let events = seeded::buggy_log_events();
    let report = check_events(&events);
    assert_eq!(report.events_visited, events.len() as u64);

    // Incremental feeding matches the whole-trace entry point, so the
    // checker can stream a trace that is still being recorded.
    let mut c = Checker::new();
    for ev in &events {
        c.push(ev);
    }
    let streamed = c.finish();
    assert_eq!(streamed.findings, report.findings);
    assert_eq!(streamed.events_visited, report.events_visited);
}

#[test]
fn findings_carry_context() {
    let report = check_events(&seeded::buggy_log_events());
    let unflushed = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::Unflushed)
        .expect("seeded");
    // Bug 1: thread 0's tx 3 commits entry 4 (line 4) dirty at 44 ns.
    assert_eq!(unflushed.tid, pmtrace::Tid(0));
    assert_eq!(unflushed.tx, Some(3));
    assert_eq!(unflushed.at_ns, 44);
    assert_eq!(unflushed.line, Some(pmem::Line(4)));
    assert!(unflushed.message.contains("tx 3"), "{}", unflushed.message);

    let races: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::CrossDep)
        .collect();
    // Bug 6: attributed to the second storer, thread 1, at 92 ns.
    assert_eq!(races[0].tid, pmtrace::Tid(1));
    assert_eq!(races[0].at_ns, 92);
    assert_eq!(races[0].line, Some(pmem::Line(10)));
    // Bug 7 plants the second cross dependency (entry 11, 102 ns).
    assert_eq!(races[1].tid, pmtrace::Tid(1));
    assert_eq!(races[1].at_ns, 102);
    assert_eq!(races[1].line, Some(pmem::Line(11)));

    let epoch_race = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::EpochRace)
        .expect("seeded");
    // Bug 7: thread 1's takeover flush at 106 ns races thread 0's
    // pending persist of entry 11.
    assert_eq!(epoch_race.tid, pmtrace::Tid(1));
    assert_eq!(epoch_race.at_ns, 106);
    assert_eq!(epoch_race.line, Some(pmem::Line(11)));

    let atomicity = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::TxAtomicity)
        .expect("seeded");
    // Bug 8: thread 0 patches tx-managed entry 12 at 130 ns with no
    // transaction open.
    assert_eq!(atomicity.tid, pmtrace::Tid(0));
    assert_eq!(atomicity.at_ns, 130);
    assert_eq!(atomicity.line, Some(pmem::Line(12)));
    assert_eq!(atomicity.tx, None);

    let recovery = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::RecoveryRead)
        .expect("seeded");
    // Bug 9: recovery reads never-durable entry 13 at 154 ns.
    assert_eq!(recovery.tid, pmtrace::Tid(0));
    assert_eq!(recovery.at_ns, 154);
    assert_eq!(recovery.line, Some(pmem::Line(13)));
}
