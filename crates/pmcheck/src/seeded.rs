//! The seeded-bug "buggy log": a hand-scripted trace of a tiny
//! two-thread append-only persistent log in which most appends follow
//! the correct store → flush → fence → commit discipline, but nine
//! bugs are deliberately planted — at least one for each rule,
//! including the happens-before rules (`P-EPOCH-RACE`,
//! `P-TX-ATOMICITY`) and the recovery-phase rule (`P-RECOVERY-READ`).
//!
//! `examples/buggy_log.rs` runs the checker over this trace and prints
//! the findings; the `pmcheck` integration tests assert the exact rule
//! ids and counts below, proving every rule fires.

use crate::rules::Rule;
use pmtrace::{Category, Event, Tid, TraceBuffer};

/// Expected findings per rule over [`buggy_log_events`]:
/// `(rule, error_count, warn_count)` in [`Rule::ALL`] order.
pub const EXPECTED: [(Rule, usize, usize); 8] = [
    (Rule::Unflushed, 1, 0),      // append committed without any flush
    (Rule::Unordered, 2, 0),      // commit before fence + dependent store
    (Rule::RedundantFlush, 0, 2), // clean-line flush + re-flush after fence
    (Rule::DoubleFence, 0, 1),    // back-to-back fences
    (Rule::CrossDep, 2, 0),       // two unfenced writers on one line (×2)
    (Rule::EpochRace, 1, 0),      // concurrent persists of one line
    (Rule::TxAtomicity, 1, 0),    // naked store to a tx-managed entry
    (Rule::RecoveryRead, 1, 0),   // recovery reads an unproven entry
];

/// Total error- and warn-severity findings in [`buggy_log_events`].
pub const EXPECTED_ERRORS: usize = 8;
/// See [`EXPECTED_ERRORS`].
pub const EXPECTED_WARNINGS: usize = 3;

/// Build the buggy-log trace. Deterministic: no RNG, fixed timestamps.
pub fn buggy_log_events() -> Vec<Event> {
    let (t0, t1) = (Tid(0), Tid(1));
    let entry = |slot: u64| slot * 64; // one log entry per 64 B line
    let mut t = TraceBuffer::new();

    // -- Three correct appends: the background the bugs stand out from.
    // Entry 1, thread 0: store, flush, fence, commit.
    t.tx_begin(t0, 1, 10);
    t.pm_store(t0, entry(1), 24, false, Category::UserData, 12);
    t.flush(t0, entry(1), 14);
    t.fence(t0, 16);
    t.tx_end(t0, 1, 18);
    // Entry 2, thread 1: same discipline.
    t.tx_begin(t1, 1, 20);
    t.pm_store(t1, entry(2), 24, false, Category::UserData, 22);
    t.flush(t1, entry(2), 24);
    t.fence(t1, 26);
    t.tx_end(t1, 1, 28);
    // Entry 3, thread 0: a non-temporal append — its own flush, only a
    // durability fence needed.
    t.tx_begin(t0, 2, 30);
    t.pm_store(t0, entry(3), 32, true, Category::RedoLog, 32);
    t.dfence(t0, 34);
    t.tx_end(t0, 2, 36);

    // -- Bug 1 (P-UNFLUSHED): entry 4 is committed with no covering
    // flush at all; a crash after the commit record could lose it.
    t.tx_begin(t0, 3, 40);
    t.pm_store(t0, entry(4), 16, false, Category::UserData, 42);
    t.tx_end(t0, 3, 44);
    t.flush(t0, entry(4), 46); // late cleanup so only the commit is buggy
    t.fence(t0, 48);

    // -- Bug 2 (P-UNORDERED, commit variant): entry 5 is flushed but
    // the commit happens before any fence orders the flush.
    t.tx_begin(t0, 4, 50);
    t.pm_store(t0, entry(5), 16, false, Category::UserData, 52);
    t.flush(t0, entry(5), 54);
    t.tx_end(t0, 4, 56);
    t.fence(t0, 58);

    // -- Bug 3 (P-UNORDERED, dependent-store variant): entry 6's line
    // is flushed, then stored to again before the fence — the flushed
    // snapshot no longer covers the line's newest bytes.
    t.pm_store(t0, entry(6), 8, false, Category::AppMeta, 60);
    t.flush(t0, entry(6), 62);
    t.pm_store(t0, entry(6) + 8, 8, false, Category::AppMeta, 64);
    t.flush(t0, entry(6), 66);
    t.fence(t0, 68);

    // -- Bug 4 (P-REDUNDANT-FLUSH × 2): thread 1 flushes entry 7's
    // line before ever storing to it, then re-flushes entry 8 after
    // it is already flushed and fenced.
    t.flush(t1, entry(7), 70);
    t.pm_store(t1, entry(8), 8, false, Category::AppMeta, 72);
    t.flush(t1, entry(8), 74);
    t.fence(t1, 76);
    t.flush(t1, entry(8), 78);
    t.fence(t1, 80);

    // -- Bug 5 (P-DOUBLE-FENCE): thread 1 fences again with no PM
    // work since the fence at 80 ns.
    t.fence(t1, 82);

    // -- Bug 6 (P-CROSS-DEP): both threads store entry 10's line with
    // no fence between — whichever epoch a crash cuts, the line's
    // durable value is a race outcome.
    t.pm_store(t0, entry(10), 8, false, Category::UserData, 90);
    t.pm_store(t1, entry(10), 8, false, Category::UserData, 92);
    t.flush(t0, entry(10), 94);
    t.fence(t0, 96);
    t.fence(t1, 98); // closes thread 1's racy epoch (stores were real work)

    // -- Bug 7 (P-EPOCH-RACE, plus a second P-CROSS-DEP): both threads
    // store entry 11's line unfenced (the cross dependency), then both
    // flush it before either fences — two happens-before-concurrent
    // persists, so the device may write back either thread's bytes
    // last. Thread 1's flush takes over coverage and its fence retires
    // the line, keeping the trace end clean.
    t.pm_store(t0, entry(11), 8, false, Category::UserData, 100);
    t.pm_store(t1, entry(11), 8, false, Category::UserData, 102);
    t.flush(t0, entry(11), 104);
    t.flush(t1, entry(11), 106);
    t.fence(t0, 108);
    t.fence(t1, 110);

    // -- Bug 8 (P-TX-ATOMICITY): entry 12 is appended under a durable
    // transaction (making its line tx-managed), then patched with a
    // bare store after the commit — the update bypasses the undo/redo
    // log, so a crash mid-patch can leave the entry torn.
    t.tx_begin(t0, 5, 120);
    t.pm_store(t0, entry(12), 16, false, Category::UserData, 122);
    t.flush(t0, entry(12), 124);
    t.fence(t0, 126);
    t.tx_end(t0, 5, 128);
    t.pm_store(t0, entry(12), 8, false, Category::UserData, 130);
    t.flush(t0, entry(12), 132);
    t.fence(t0, 134);

    // -- Bug 9 (P-RECOVERY-READ): entry 13 is stored but never flushed
    // before the crash point, while entry 14 is made properly durable.
    // Recovery reads entry 14 (fine) and then entry 13 — a value the
    // crash may not have preserved — before rebuilding it.
    t.pm_store(t0, entry(13), 8, false, Category::UserData, 140);
    t.pm_store(t1, entry(14), 8, false, Category::UserData, 142);
    t.flush(t1, entry(14), 144);
    t.fence(t1, 146);
    t.recovery_begin(t0, 150);
    t.pm_load(t0, entry(14), 152);
    t.pm_load(t0, entry(13), 154);
    t.pm_store(t0, entry(13), 8, false, Category::UserData, 156); // rebuild
    t.flush(t0, entry(13), 158);
    t.fence(t0, 160);

    t.into_events()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_counts_are_consistent() {
        let errors: usize = EXPECTED.iter().map(|(_, e, _)| e).sum();
        let warns: usize = EXPECTED.iter().map(|(_, _, w)| w).sum();
        assert_eq!(errors, EXPECTED_ERRORS);
        assert_eq!(warns, EXPECTED_WARNINGS);
        for (i, (rule, _, _)) in EXPECTED.iter().enumerate() {
            assert_eq!(*rule, Rule::ALL[i], "EXPECTED is in Rule::ALL order");
        }
    }
}
