//! The ordering optimizer: elide checker-flagged redundant flushes and
//! double fences from a recorded trace.
//!
//! WHISPER's central result is that ordering (flushes/fences) dominates
//! PM overhead; MOD and Bentō later showed much of that ordering is
//! semantically unnecessary. The checker already *finds* exactly those
//! sites — `P-REDUNDANT-FLUSH` (a `clwb`/`clflushopt` of a clean or
//! already-durable line) and `P-DOUBLE-FENCE` (a fence with no PM work
//! since the previous fence) — and this pass turns the findings into a
//! rewritten trace with the flagged events removed.
//!
//! Why the elision is safe, at trace level:
//!
//! * A flagged flush covers a line the state machine sees as *Clean*
//!   (never stored since the trace began) or *Durable* (already flushed
//!   and fenced). Removing it takes no store's durability coverage
//!   away.
//! * A flagged fence closes an epoch containing no PM store or flush.
//!   It retires nothing, so no `Flushed` line loses its ordering point.
//!
//! Elision can *cascade*: removing a redundant flush may leave the
//! following fence with no PM work, turning it into a double fence on
//! the next pass. The rewrite therefore iterates check → elide to a
//! fixpoint; each non-empty round removes at least one event, so it
//! terminates in at most `events.len()` rounds (real traces converge in
//! two or three). By construction the fixpoint trace is clean of both
//! flagged rules, and eliding warn-only events introduces no new
//! errors — both re-checked by `whisper-report --optimize`, and
//! machine-verified by re-running the crash campaign over the elided
//! schedule (the Bentō-style soundness gate).
//!
//! Surviving events keep their original order, ids, and timestamps, so
//! the hops `Replayer` prices the rewritten trace directly and epoch
//! segmentation stays aligned.

use crate::checker::{CheckReport, Checker};
use crate::rules::Rule;
use pmtrace::{transform::TraceEdit, Event, EventKind};

/// What one [`rewrite_events`] run did.
#[derive(Debug, Clone, Default)]
pub struct RewriteReport {
    /// The rewritten trace: the input minus every elided event, order
    /// and timestamps untouched.
    pub events: Vec<Event>,
    /// Indices of the elided events *in the original trace*,
    /// ascending.
    pub elided: Vec<usize>,
    /// Elided `Flush` events (all anchored by `P-REDUNDANT-FLUSH`).
    pub elided_flushes: usize,
    /// Elided `Fence`/`DFence` events (all anchored by
    /// `P-DOUBLE-FENCE`).
    pub elided_fences: usize,
    /// Checking passes run, including the final clean pass that proves
    /// the fixpoint (so ≥ 1 even when nothing is elided).
    pub rounds: usize,
}

impl RewriteReport {
    /// Total elided events.
    pub fn elided_total(&self) -> usize {
        self.elided.len()
    }
}

/// True for the rules whose findings the optimizer may elide.
pub fn is_elidable(rule: Rule) -> bool {
    matches!(rule, Rule::RedundantFlush | Rule::DoubleFence)
}

fn check_pass(events: &[Event]) -> CheckReport {
    let mut c = Checker::new();
    for ev in events {
        c.push(ev);
    }
    c.finish()
}

/// Rewrite `events` to a fixpoint: repeatedly check, elide every
/// event anchored by a `P-REDUNDANT-FLUSH` or `P-DOUBLE-FENCE`
/// finding, and re-check until a pass reports neither rule. Findings
/// without an anchoring event (end-of-trace warnings) are never
/// elision candidates, and no event of any other kind is ever removed.
pub fn rewrite_events(events: &[Event]) -> RewriteReport {
    let _span = pmobs::span!("pmcheck.rewrite");
    let mut current: Vec<Event> = events.to_vec();
    // origin[i] = index of current[i] in the *original* trace.
    let mut origin: Vec<usize> = (0..events.len()).collect();
    let mut out = RewriteReport::default();

    loop {
        out.rounds += 1;
        let report = check_pass(&current);
        let mut targets: Vec<usize> = report
            .findings
            .iter()
            .filter(|f| is_elidable(f.rule))
            .filter_map(|f| f.at_index)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            break;
        }
        let mut edit = TraceEdit::new();
        for &i in &targets {
            match current[i].kind {
                EventKind::Flush { .. } => out.elided_flushes += 1,
                EventKind::Fence | EventKind::DFence => out.elided_fences += 1,
                // The flagged rules only ever anchor flushes and
                // fences; anything else would be a checker bug.
                _ => unreachable!("elidable finding anchored a non-flush/fence event"),
            }
            out.elided.push(origin[i]);
            edit.elide(i);
        }
        let (kept, kept_idx) = edit.apply(&current);
        origin = kept_idx.iter().map(|&ci| origin[ci]).collect();
        current = kept;
    }

    out.elided.sort_unstable();
    pmobs::count!("pmcheck.rewrite.elided", out.elided.len() as u64);
    out.events = current;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_events;
    use pmtrace::{Category, Tid, TraceBuffer};

    const T0: Tid = Tid(0);

    #[test]
    fn clean_trace_is_untouched() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        let r = rewrite_events(t.events());
        assert_eq!(r.events, t.events());
        assert_eq!(r.elided_total(), 0);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn cascade_elides_the_fence_a_redundant_flush_was_propping_up() {
        // flush(clean), store, flush, fence, flush(durable), fence:
        // round 1 drops both redundant flushes; with the durable
        // re-flush gone the final fence has no PM work, so round 2
        // drops it too.
        let mut t = TraceBuffer::new();
        t.flush(T0, 640, 5);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.flush(T0, 0, 40);
        t.fence(T0, 50);
        let r = rewrite_events(t.events());
        assert_eq!(r.elided_flushes, 2);
        assert_eq!(r.elided_fences, 1);
        assert_eq!(r.elided, vec![0, 4, 5]);
        assert_eq!(r.rounds, 3, "two eliding rounds + the clean pass");
        assert_eq!(r.events.len(), 3);
        assert!(check_events(&r.events).findings.is_empty());
    }

    #[test]
    fn rewrite_is_idempotent() {
        let mut t = TraceBuffer::new();
        t.flush(T0, 640, 5);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.flush(T0, 0, 40);
        t.fence(T0, 50);
        let first = rewrite_events(t.events());
        let second = rewrite_events(&first.events);
        assert_eq!(second.elided_total(), 0);
        assert_eq!(second.events, first.events);
    }

    #[test]
    fn end_of_trace_warnings_are_not_elided() {
        // A trace cut before its persist point: dirty + pending lines
        // warn at finish() with no anchoring event, so nothing can or
        // should be removed.
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.pm_store(T0, 64, 8, false, Category::UserData, 20);
        t.flush(T0, 64, 30);
        let r = rewrite_events(t.events());
        assert_eq!(r.elided_total(), 0);
        assert_eq!(r.events, t.events());
    }
}
