//! The streaming checker: one pass, per-line state machines, plus a
//! vector-clock happens-before engine ([`crate::hb`]) that founds the
//! concurrency rules (`P-CROSS-DEP`, `P-EPOCH-RACE`) on provable
//! ordering rather than the recorded interleaving.

use crate::hb::HbEngine;
use crate::rules::{Rule, RuleSet, Severity};
use pmem::{lines_spanning, FxHashMap, FxHashSet, Line};
use pmtrace::{Category, Event, EventKind, Tid, TxId};

/// One rule violation, anchored to the event that triggered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Error findings gate CI; warnings are diagnostics.
    pub severity: Severity,
    /// Thread the finding is attributed to.
    pub tid: Tid,
    /// Simulated timestamp of the triggering event (the trace's last
    /// timestamp for end-of-trace findings).
    pub at_ns: u64,
    /// The 64 B line involved, if the rule is line-scoped
    /// (`P-DOUBLE-FENCE` is not).
    pub line: Option<Line>,
    /// Ordinal of the thread's enclosing epoch (fences completed so
    /// far on that thread).
    pub epoch: u64,
    /// The thread's active durable transaction, if any.
    pub tx: Option<TxId>,
    /// Zero-based index of the triggering event in the checked trace,
    /// or `None` for end-of-trace findings (which have no anchoring
    /// event). This is what lets [`crate::rewrite`] map a finding back
    /// to the exact `clwb`/fence it should elide.
    pub at_index: Option<usize>,
    /// Human-readable one-liner.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {} at {} ns (epoch {}{}): {}",
            self.rule,
            self.severity,
            self.tid,
            self.at_ns,
            self.epoch,
            match self.tx {
                Some(id) => format!(", tx {id}"),
                None => String::new(),
            },
            self.message
        )
    }
}

/// Everything one checking pass produced.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// All findings, in trigger order (end-of-trace findings last, in
    /// line order).
    pub findings: Vec<Finding>,
    /// Events visited — exactly the trace length for a single pass
    /// (asserted by the `single_pass` integration test).
    pub events_visited: u64,
}

impl CheckReport {
    /// Findings for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Findings at one severity.
    pub fn count_severity(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Error-severity findings — the CI gate.
    pub fn errors(&self) -> usize {
        self.count_severity(Severity::Error)
    }

    /// Warn-severity findings.
    pub fn warnings(&self) -> usize {
        self.count_severity(Severity::Warn)
    }

    /// `(rule, errors, warnings)` for every rule, in reporting order.
    pub fn by_rule(&self) -> [(Rule, usize, usize); 8] {
        let mut out = Rule::ALL.map(|r| (r, 0usize, 0usize));
        for f in &self.findings {
            let slot = &mut out[Rule::ALL
                .iter()
                .position(|r| *r == f.rule)
                .expect("known rule")];
            match f.severity {
                Severity::Error => slot.1 += 1,
                Severity::Warn => slot.2 += 1,
            }
        }
        out
    }
}

/// Durability progress of one cache line.
///
/// Absent from the map ⇒ *Clean*: never stored to (or explicitly
/// reset). `Flushed`/`Durable` record which thread's fence is / was the
/// covering ordering point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Cacheable store landed; no covering flush yet.
    Dirty {
        /// Last storing thread.
        by: Tid,
    },
    /// A `clwb`/`clflushopt` snapshot or an NT store is in flight;
    /// durable once `by` fences.
    Flushed {
        /// Thread whose fence will complete the flush.
        by: Tid,
        /// When the covering operation was issued.
        at_ns: u64,
        /// True when the coverage is a write-combining NT store
        /// (which may legally keep combining until the fence) rather
        /// than a `clwb`/`clflushopt` snapshot.
        nt: bool,
    },
    /// Flushed and fenced: persistent as of the fence.
    Durable,
}

/// Per-thread bookkeeping.
#[derive(Debug, Default)]
struct ThreadState {
    /// Fences completed — the current epoch ordinal.
    epoch: u64,
    /// Active durable transaction.
    tx: Option<TxId>,
    /// Lines stored (cacheably or NT) inside the active transaction.
    tx_lines: FxHashSet<Line>,
    /// Lines whose `Flushed` state is waiting on this thread's fence.
    pending_flush: FxHashSet<Line>,
    /// Whether any PM store or flush happened since the last fence.
    pm_work: bool,
    /// Whether this thread has fenced before (first fence is exempt
    /// from `P-DOUBLE-FENCE`).
    fenced_before: bool,
}

/// Streaming checker state. Feed globally-ordered events to
/// [`push`](Checker::push), then [`finish`](Checker::finish);
/// or use [`check_events`] for the common whole-trace case.
#[derive(Debug, Default)]
pub struct Checker {
    lines: FxHashMap<Line, LineState>,
    /// Happens-before engine: founds `P-CROSS-DEP` and `P-EPOCH-RACE`.
    hb: HbEngine,
    /// Which rules' findings are reported (state machines always run).
    rules: RuleSet,
    threads: FxHashMap<Tid, ThreadState>,
    /// Lines ever stored under an open durable transaction — the
    /// tx-managed region model behind `P-TX-ATOMICITY`.
    tx_managed: FxHashSet<Line>,
    /// True once a `RecoveryBegin` marker was seen.
    recovery: bool,
    /// Lines durable at the recovery marker (the crash point).
    durable_at_recovery: FxHashSet<Line>,
    /// Lines rewritten during recovery (reads of these are fine).
    recovery_stores: FxHashSet<Line>,
    findings: Vec<Finding>,
    events_visited: u64,
    last_ns: u64,
    /// Index of the event currently being folded in (`None` once
    /// [`finish`](Checker::finish) starts its end-of-trace scan).
    cur_index: Option<usize>,
}

impl Checker {
    /// A fresh checker (all lines clean), reporting every rule.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A fresh checker reporting only the rules in `rules`.
    pub fn with_rules(rules: RuleSet) -> Checker {
        Checker {
            rules,
            ..Checker::default()
        }
    }

    fn report(
        &mut self,
        rule: Rule,
        severity: Severity,
        tid: Tid,
        at_ns: u64,
        line: Option<Line>,
        message: String,
    ) {
        if !self.rules.contains(rule) {
            return;
        }
        let t = self.threads.entry(tid).or_default();
        self.findings.push(Finding {
            rule,
            severity,
            tid,
            at_ns,
            line,
            epoch: t.epoch,
            tx: t.tx,
            at_index: self.cur_index,
            message,
        });
    }

    /// Fold one event into the state machines. Call in global trace
    /// order.
    pub fn push(&mut self, ev: &Event) {
        self.events_visited += 1;
        self.cur_index = Some((self.events_visited - 1) as usize);
        self.last_ns = self.last_ns.max(ev.at_ns);
        self.hb.begin_event(ev.tid, ev.at_ns);
        match ev.kind {
            EventKind::PmStore { addr, len, nt, cat } => {
                for (line, _, _) in lines_spanning(addr, len as usize) {
                    self.on_store(ev.tid, ev.at_ns, line, nt, cat);
                }
            }
            EventKind::Flush { addr } => self.on_flush(ev.tid, ev.at_ns, Line::containing(addr)),
            EventKind::Fence => {
                self.on_fence(ev.tid, ev.at_ns);
                self.hb.fence(false);
            }
            EventKind::DFence => {
                self.on_fence(ev.tid, ev.at_ns);
                self.hb.fence(true);
            }
            EventKind::TxBegin { id } => {
                self.hb.tx_begin();
                let t = self.threads.entry(ev.tid).or_default();
                t.tx = Some(id);
                t.tx_lines.clear();
            }
            EventKind::TxEnd { id } => {
                self.on_tx_end(ev.tid, ev.at_ns, id);
                self.hb.tx_end();
            }
            EventKind::PmLoad { addr } => {
                self.on_load(ev.tid, ev.at_ns, Line::containing(addr));
            }
            EventKind::RecoveryBegin => {
                // The marker declares: everything before it is the
                // pre-crash execution, everything after is recovery.
                // Snapshot what the discipline *proved* durable — the
                // only lines recovery may rely on.
                self.recovery = true;
                self.durable_at_recovery = self
                    .lines
                    .iter()
                    .filter(|(_, s)| matches!(s, LineState::Durable))
                    .map(|(l, _)| *l)
                    .collect();
                self.recovery_stores.clear();
            }
        }
    }

    fn on_store(&mut self, tid: Tid, at_ns: u64, line: Line, nt: bool, cat: Category) {
        // P-CROSS-DEP: a prior store to this line by another thread is
        // happens-before-concurrent with this one — no fence, commit,
        // or observed communication orders the two epochs, so whichever
        // one a crash cuts, the line's durable value is a race outcome.
        let conflicts = self.hb.store(line);
        if !conflicts.is_empty() {
            let others: Vec<String> = conflicts.iter().map(ToString::to_string).collect();
            self.report(
                Rule::CrossDep,
                Severity::Error,
                tid,
                at_ns,
                Some(line),
                format!(
                    "store to {line} races happens-before-concurrent store(s) from {} — no ordering fence between the epochs",
                    others.join(",")
                ),
            );
        }

        // P-TX-ATOMICITY: a store into the tx-managed region (a line
        // previously written under a durable transaction) while no
        // transaction is open bypasses undo/redo-log protection.
        let in_tx = self.threads.get(&tid).is_some_and(|t| t.tx.is_some());
        if cat == Category::UserData {
            if in_tx {
                self.tx_managed.insert(line);
            } else if self.tx_managed.contains(&line) {
                self.report(
                    Rule::TxAtomicity,
                    Severity::Error,
                    tid,
                    at_ns,
                    Some(line),
                    format!(
                        "store to tx-managed {line} with no transaction open — the update bypasses undo/redo-log protection"
                    ),
                );
            }
        }
        if self.recovery {
            self.recovery_stores.insert(line);
        }

        // P-EPOCH-RACE (NT path): an NT store is its own persist; if a
        // foreign persist of the line is still pending and unordered,
        // the device may apply the writebacks in either order.
        if nt {
            let pconf = self.hb.persist(line);
            if !pconf.is_empty() {
                let others: Vec<String> = pconf.iter().map(ToString::to_string).collect();
                self.report(
                    Rule::EpochRace,
                    Severity::Error,
                    tid,
                    at_ns,
                    Some(line),
                    format!(
                        "NT store persists {line} concurrently with unfenced persist(s) from {} — writeback order is a race",
                        others.join(",")
                    ),
                );
            }
        }

        let prev = self.lines.get(&line).copied();
        if let Some(LineState::Flushed {
            by,
            at_ns: f_ns,
            nt: was_nt,
        }) = prev
        {
            if !was_nt {
                // P-UNORDERED: a dependent store lands before the
                // pending `clwb` was fenced — the snapshot taken at
                // flush time no longer covers the line's newest data,
                // and the flush itself has no ordering point yet.
                // (An in-flight *NT* entry instead legally keeps
                // write-combining, or is superseded by a cacheable
                // store that takes over durability — neither is a
                // violation on its own.)
                self.report(
                    Rule::Unordered,
                    Severity::Error,
                    tid,
                    at_ns,
                    Some(line),
                    format!(
                        "store to {line} before the flush issued by {by} at {f_ns} ns was fenced — the flushed data has no ordering point"
                    ),
                );
            }
            if by != tid || !nt {
                if let Some(f) = self.threads.get_mut(&by) {
                    f.pending_flush.remove(&line);
                }
            }
        }
        let next = if nt {
            // An NT store bypasses the cache into the write-combining
            // buffer: it is its own flush, pending this thread's fence.
            LineState::Flushed {
                by: tid,
                at_ns,
                nt: true,
            }
        } else {
            LineState::Dirty { by: tid }
        };
        self.lines.insert(line, next);

        let t = self.threads.entry(tid).or_default();
        t.pm_work = true;
        if nt {
            t.pending_flush.insert(line);
        }
        if t.tx.is_some() {
            t.tx_lines.insert(line);
        }
    }

    /// `P-EPOCH-RACE` (flush path): this flush persists `line` while a
    /// foreign persist of the same line is pending and unordered.
    /// Called only for flushes that actually persist something — a
    /// redundant flush (clean/durable line) has no happens-before
    /// effect, which is what keeps [`crate::rewrite`]'s elision sound.
    fn persist_race_check(&mut self, tid: Tid, at_ns: u64, line: Line) {
        let pconf = self.hb.persist(line);
        if !pconf.is_empty() {
            let others: Vec<String> = pconf.iter().map(ToString::to_string).collect();
            self.report(
                Rule::EpochRace,
                Severity::Error,
                tid,
                at_ns,
                Some(line),
                format!(
                    "flush persists {line} concurrently with unfenced persist(s) from {} — writeback order is a race",
                    others.join(",")
                ),
            );
        }
    }

    fn on_flush(&mut self, tid: Tid, at_ns: u64, line: Line) {
        self.threads.entry(tid).or_default().pm_work = true;
        match self.lines.get(&line).copied() {
            None => self.report(
                Rule::RedundantFlush,
                Severity::Warn,
                tid,
                at_ns,
                Some(line),
                format!("flush of clean {line} — nothing was stored there"),
            ),
            Some(LineState::Durable) => self.report(
                Rule::RedundantFlush,
                Severity::Warn,
                tid,
                at_ns,
                Some(line),
                format!("flush of already-flushed-and-fenced {line}"),
            ),
            Some(LineState::Dirty { .. }) => {
                self.persist_race_check(tid, at_ns, line);
                self.lines.insert(
                    line,
                    LineState::Flushed {
                        by: tid,
                        at_ns,
                        nt: false,
                    },
                );
                self.threads
                    .entry(tid)
                    .or_default()
                    .pending_flush
                    .insert(line);
            }
            Some(LineState::Flushed { by, nt, .. }) => {
                self.persist_race_check(tid, at_ns, line);
                // Re-flush of a still-pending line: not redundant per
                // the rule (only clean/durable lines are). For a
                // pending `clwb` from another thread, the later flush
                // takes over coverage; a pending *NT* entry drains on
                // its storing thread's fence, which a foreign flush
                // cannot accelerate, so its ownership is untouched.
                if !nt && by != tid {
                    if let Some(f) = self.threads.get_mut(&by) {
                        f.pending_flush.remove(&line);
                    }
                    self.lines.insert(
                        line,
                        LineState::Flushed {
                            by: tid,
                            at_ns,
                            nt: false,
                        },
                    );
                    self.threads
                        .entry(tid)
                        .or_default()
                        .pending_flush
                        .insert(line);
                }
            }
        }
    }

    fn on_fence(&mut self, tid: Tid, at_ns: u64) {
        let t = self.threads.entry(tid).or_default();
        let idle = !t.pm_work && t.fenced_before;
        if idle {
            // Report before the epoch counter advances: the useless
            // fence belongs to the epoch it closes.
            self.report(
                Rule::DoubleFence,
                Severity::Warn,
                tid,
                at_ns,
                None,
                "fence with no PM store or flush since the previous fence".to_string(),
            );
        }
        let t = self.threads.entry(tid).or_default();
        // Retire this thread's pending flushes. (The happens-before
        // engine retires its in-flight stores and pending persists in
        // [`HbEngine::fence`], driven from [`push`](Checker::push).)
        let pending: Vec<Line> = t.pending_flush.drain().collect();
        t.pm_work = false;
        t.fenced_before = true;
        t.epoch += 1;
        for line in pending {
            // The set can be momentarily stale (a dependent store or
            // another thread's flush displaced the entry); only retire
            // lines still waiting on this thread.
            if let Some(LineState::Flushed { by, .. }) = self.lines.get(&line) {
                if *by == tid {
                    self.lines.insert(line, LineState::Durable);
                }
            }
        }
    }

    /// `P-RECOVERY-READ`: during recovery, a load of a line that was
    /// written before the crash point but not proven durable at any
    /// fence preceding it — and not rewritten by recovery itself — is
    /// consuming a value the crash may not have preserved.
    fn on_load(&mut self, tid: Tid, at_ns: u64, line: Line) {
        self.hb.load(line);
        if self.recovery
            && self.lines.contains_key(&line)
            && !self.durable_at_recovery.contains(&line)
            && !self.recovery_stores.contains(&line)
        {
            self.report(
                Rule::RecoveryRead,
                Severity::Error,
                tid,
                at_ns,
                Some(line),
                format!(
                    "recovery reads {line}, written before the crash point but never proven durable at a preceding fence"
                ),
            );
        }
    }

    fn on_tx_end(&mut self, tid: Tid, at_ns: u64, id: TxId) {
        let t = self.threads.entry(tid).or_default();
        let mut tx_lines: Vec<Line> = t.tx_lines.drain().collect();
        tx_lines.sort_unstable();
        // The transaction stays "active" through the commit checks so
        // findings carry the committing tx as context.
        for line in tx_lines {
            match self.lines.get(&line).copied() {
                Some(LineState::Dirty { by }) => self.report(
                    Rule::Unflushed,
                    Severity::Error,
                    tid,
                    at_ns,
                    Some(line),
                    format!("tx {id} committed while {line} (stored by {by}) is dirty with no covering clwb/clflushopt/NT store"),
                ),
                Some(LineState::Flushed { by, at_ns: f_ns, .. }) => self.report(
                    Rule::Unordered,
                    Severity::Error,
                    tid,
                    at_ns,
                    Some(line),
                    format!("tx {id} committed while the flush of {line} (issued by {by} at {f_ns} ns) awaits a fence"),
                ),
                Some(LineState::Durable) | None => {}
            }
        }
        self.threads.entry(tid).or_default().tx = None;
    }

    /// End-of-trace scan: anything still dirty or pending is reported
    /// at warn severity — the trace may simply have been cut before
    /// the program's next persist point, so this is a heuristic, not a
    /// proof (the tx-commit variants of the same states are errors).
    pub fn finish(mut self) -> CheckReport {
        self.cur_index = None;
        let mut tail: Vec<(Line, LineState)> = self
            .lines
            .iter()
            .filter(|(_, s)| !matches!(s, LineState::Durable))
            .map(|(l, s)| (*l, *s))
            .collect();
        tail.sort_unstable_by_key(|(l, _)| *l);
        let at_ns = self.last_ns;
        for (line, state) in tail {
            match state {
                LineState::Dirty { by } => self.report(
                    Rule::Unflushed,
                    Severity::Warn,
                    by,
                    at_ns,
                    Some(line),
                    format!("{line} still dirty at trace end — stored but never flushed"),
                ),
                LineState::Flushed {
                    by, at_ns: f_ns, ..
                } => self.report(
                    Rule::Unordered,
                    Severity::Warn,
                    by,
                    at_ns,
                    Some(line),
                    format!("flush of {line} (issued at {f_ns} ns) never fenced before trace end"),
                ),
                LineState::Durable => unreachable!("filtered above"),
            }
        }
        CheckReport {
            findings: self.findings,
            events_visited: self.events_visited,
        }
    }
}

/// Check a whole trace in one pass, reporting every rule.
pub fn check_events(events: &[Event]) -> CheckReport {
    check_events_with(events, RuleSet::all())
}

/// Check a whole trace in one pass, reporting only `rules`.
pub fn check_events_with(events: &[Event], rules: RuleSet) -> CheckReport {
    let _span = pmobs::span!("pmcheck");
    let mut c = Checker::with_rules(rules);
    for ev in events {
        c.push(ev);
    }
    let report = c.finish();
    pmobs::count!("pmcheck.events_checked", report.events_visited);
    pmobs::count!("pmcheck.findings", report.findings.len() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::{Category, TraceBuffer};

    const T0: Tid = Tid(0);
    const T1: Tid = Tid(1);

    fn ids(report: &CheckReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule.id()).collect()
    }

    #[test]
    fn clean_discipline_has_no_findings() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.tx_end(T0, 1, 40);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.events_visited, 5);
    }

    #[test]
    fn nt_store_is_its_own_flush() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 0, 8, true, Category::RedoLog, 10);
        t.dfence(T0, 20);
        t.tx_end(T0, 1, 30);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn dirty_at_commit_is_unflushed_error() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 7, 0);
        t.pm_store(T0, 128, 8, false, Category::UserData, 10);
        t.tx_end(T0, 7, 20);
        t.flush(T0, 128, 30); // late cleanup keeps trace end quiet
        t.fence(T0, 40);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-UNFLUSHED"]);
        assert_eq!(r.findings[0].severity, Severity::Error);
        assert_eq!(r.findings[0].tx, Some(7));
        assert_eq!(r.findings[0].line, Some(Line(2)));
    }

    #[test]
    fn unfenced_flush_at_commit_is_unordered_error() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 3, 0);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.tx_end(T0, 3, 30);
        t.fence(T0, 40);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-UNORDERED"]);
        assert_eq!(r.findings[0].severity, Severity::Error);
    }

    #[test]
    fn dependent_store_before_fence_is_unordered() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.pm_store(T0, 8, 8, false, Category::UserData, 30); // same line
        t.flush(T0, 0, 40);
        t.fence(T0, 50);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-UNORDERED"]);
    }

    #[test]
    fn flush_of_clean_and_durable_lines_warns() {
        let mut t = TraceBuffer::new();
        t.flush(T0, 640, 5); // clean: never stored
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.flush(T0, 0, 40); // durable already
        t.fence(T0, 50);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-REDUNDANT-FLUSH", "P-REDUNDANT-FLUSH"]);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 2);
    }

    #[test]
    fn refllush_of_pending_line_is_not_redundant() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.flush(T0, 0, 25); // still pending: takes over, no warning
        t.fence(T0, 30);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn back_to_back_fences_warn_once() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 15);
        t.fence(T0, 20);
        t.fence(T0, 30); // nothing in between
        t.dfence(T0, 40); // still nothing
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-DOUBLE-FENCE", "P-DOUBLE-FENCE"]);
        assert_eq!(r.findings[0].epoch, 1, "fires inside the second epoch");
    }

    #[test]
    fn first_fence_of_a_thread_is_exempt() {
        let mut t = TraceBuffer::new();
        t.fence(T0, 10);
        let r = check_events(t.events());
        assert!(r.findings.is_empty());
    }

    #[test]
    fn cross_thread_inflight_store_is_a_race() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.pm_store(T1, 0, 8, false, Category::UserData, 20); // t0 not fenced yet
        t.flush(T0, 0, 30); // covers both threads' bytes (line granularity)
        t.fence(T0, 40);
        t.fence(T1, 50);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-CROSS-DEP"]);
        assert_eq!(r.findings[0].tid, T1);
        assert_eq!(r.findings[0].severity, Severity::Error);
    }

    #[test]
    fn fence_separated_cross_dependency_is_legal() {
        // The paper's Figure-5 cross dependency: t0 fences, then t1
        // touches the same line. Ordered, so no finding.
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.pm_store(T1, 0, 8, false, Category::UserData, 40);
        t.flush(T1, 0, 50);
        t.fence(T1, 60);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn trace_end_leftovers_warn() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10); // dirty forever
        t.pm_store(T0, 64, 8, false, Category::UserData, 20);
        t.flush(T0, 64, 30); // flushed, never fenced
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-UNFLUSHED", "P-UNORDERED"]);
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 2);
    }

    #[test]
    fn store_spanning_lines_tracks_both() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 60, 8, false, Category::UserData, 10); // lines 0 and 1
        t.flush(T0, 0, 20); // only line 0 flushed
        t.fence(T0, 30);
        t.tx_end(T0, 1, 40);
        t.flush(T0, 64, 50);
        t.fence(T0, 60);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-UNFLUSHED"]);
        assert_eq!(r.findings[0].line, Some(Line(1)));
    }

    #[test]
    fn by_rule_tallies_severities() {
        let mut t = TraceBuffer::new();
        t.flush(T0, 0, 5); // redundant (clean)
        t.tx_begin(T0, 1, 10);
        t.pm_store(T0, 64, 8, false, Category::UserData, 20);
        t.tx_end(T0, 1, 30); // unflushed error
        t.flush(T0, 64, 40);
        t.fence(T0, 50);
        let r = check_events(t.events());
        let by = r.by_rule();
        assert_eq!(by[0], (Rule::Unflushed, 1, 0));
        assert_eq!(by[2], (Rule::RedundantFlush, 0, 1));
        assert_eq!((r.errors(), r.warnings()), (1, 1));
    }

    #[test]
    fn empty_trace_is_clean() {
        let r = check_events(&[]);
        assert!(r.findings.is_empty());
        assert_eq!(r.events_visited, 0);
    }

    #[test]
    fn hb_tx_commit_orders_cross_thread_stores() {
        // t0's commit releases the line it wrote in-tx; t1's later
        // store acquires that release, so the pair is ordered even
        // though t0 never fenced between the stores. The recorded
        // interleaving alone would have called this a race — the HB
        // engine is what removes the false negative's dual.
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.tx_end(T0, 1, 40);
        t.tx_begin(T1, 2, 50);
        t.pm_store(T1, 0, 8, false, Category::UserData, 60);
        t.flush(T1, 0, 70);
        t.fence(T1, 80);
        t.tx_end(T1, 2, 90);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn concurrent_persists_are_an_epoch_race() {
        // t1 flushes t0's dirty line (takeover), then t0 flushes it
        // again before either thread fences: two unordered persists of
        // one line — the device may apply them in either order.
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T1, 0, 20);
        t.flush(T0, 0, 30);
        t.fence(T0, 40);
        t.fence(T1, 50);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-EPOCH-RACE"]);
        assert_eq!(r.findings[0].tid, T0);
        assert_eq!(r.findings[0].severity, Severity::Error);
        assert_eq!(r.findings[0].line, Some(Line(0)));
    }

    #[test]
    fn fence_separated_persists_are_legal() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.pm_store(T1, 0, 8, false, Category::UserData, 40);
        t.flush(T1, 0, 50);
        t.fence(T1, 60);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn naked_store_to_tx_managed_line_is_an_atomicity_error() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.tx_end(T0, 1, 40);
        t.pm_store(T0, 0, 8, false, Category::UserData, 50); // no tx open
        t.flush(T0, 0, 60);
        t.fence(T0, 70);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-TX-ATOMICITY"]);
        assert_eq!(r.findings[0].tid, T0);
        assert_eq!(r.findings[0].at_ns, 50);
        assert_eq!(r.findings[0].tx, None);
    }

    #[test]
    fn tx_managed_model_only_covers_user_data() {
        // Log writes (undo/redo) legitimately happen outside any
        // transaction during recovery or maintenance; only user data
        // is modeled as tx-managed.
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 0);
        t.pm_store(T0, 0, 8, true, Category::RedoLog, 10);
        t.dfence(T0, 20);
        t.tx_end(T0, 1, 30);
        t.pm_store(T0, 0, 8, true, Category::RedoLog, 40); // same line, no tx
        t.dfence(T0, 50);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn recovery_read_of_unproven_line_is_an_error() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10); // dirty at crash
        t.pm_store(T0, 64, 8, false, Category::UserData, 20);
        t.flush(T0, 64, 30);
        t.fence(T0, 40); // line 1 proven durable
        t.recovery_begin(T0, 50);
        t.pm_load(T0, 64, 60); // durable: fine
        t.pm_load(T0, 0, 70); // unproven: error
        t.pm_store(T0, 0, 8, false, Category::UserData, 80); // recovery rewrite
        t.pm_load(T0, 0, 90); // rewritten: fine
        t.flush(T0, 0, 100);
        t.fence(T0, 110);
        let r = check_events(t.events());
        assert_eq!(ids(&r), vec!["P-RECOVERY-READ"]);
        assert_eq!(r.findings[0].at_ns, 70);
        assert_eq!(r.findings[0].line, Some(Line(0)));
    }

    #[test]
    fn loads_outside_recovery_are_unchecked() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.pm_load(T0, 0, 20); // dirty read pre-crash: not the rule's business
        t.flush(T0, 0, 30);
        t.fence(T0, 40);
        let r = check_events(t.events());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn rule_filter_suppresses_findings() {
        let mut t = TraceBuffer::new();
        t.flush(T0, 640, 5); // redundant flush warn
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.pm_store(T1, 0, 8, false, Category::UserData, 20); // cross-dep error
        t.flush(T0, 0, 30);
        t.fence(T0, 40);
        t.fence(T1, 50);
        let all = check_events(t.events());
        assert_eq!(ids(&all), vec!["P-REDUNDANT-FLUSH", "P-CROSS-DEP"]);
        let only_race = check_events_with(t.events(), RuleSet::from_ids("P-CROSS-DEP").unwrap());
        assert_eq!(ids(&only_race), vec!["P-CROSS-DEP"]);
        assert_eq!(only_race.events_visited, all.events_visited);
    }

    #[test]
    fn findings_anchor_their_triggering_event() {
        let mut t = TraceBuffer::new();
        t.flush(T0, 640, 5); // index 0: redundant (clean)
        t.pm_store(T0, 0, 8, false, Category::UserData, 10);
        t.flush(T0, 0, 20);
        t.fence(T0, 30);
        t.fence(T0, 40); // index 4: double fence
        t.pm_store(T0, 128, 8, false, Category::UserData, 50); // dirty at end
        let r = check_events(t.events());
        assert_eq!(
            ids(&r),
            vec!["P-REDUNDANT-FLUSH", "P-DOUBLE-FENCE", "P-UNFLUSHED"]
        );
        assert_eq!(r.findings[0].at_index, Some(0));
        assert_eq!(r.findings[1].at_index, Some(4));
        assert_eq!(
            r.findings[2].at_index, None,
            "end-of-trace findings have no anchoring event"
        );
    }
}
