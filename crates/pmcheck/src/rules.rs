//! Rule identities, severities, and rule-set selection.

/// How bad a finding is.
///
/// The suite gate (`whisper-report --check`, CI) fails only on
/// [`Severity::Error`]; warnings are performance diagnostics and
/// end-of-trace heuristics that a correct program may still produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably a crash-consistency bug.
    Warn,
    /// A durability-discipline violation.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The eight persistency rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A store was still dirty — no covering `clwb`/`clflushopt`/NT
    /// store — at a transaction commit or at the end of the trace.
    Unflushed,
    /// A flush was not followed by an `sfence` before the next
    /// dependent store to the same line, a transaction commit, or the
    /// end of the trace — the flushed data has no ordering point.
    Unordered,
    /// A flush of a clean line or of a line already flushed and fenced:
    /// wasted PM write bandwidth.
    RedundantFlush,
    /// Two fences from one thread with no PM store or flush between
    /// them: the second fence orders nothing.
    DoubleFence,
    /// Two threads stored to the same line in happens-before-concurrent
    /// unfenced epochs: under *every* linearization, whichever epoch a
    /// crash cuts, the line's durable value is a race outcome (the
    /// paper's §4 cross-thread dependency, minus the fence that would
    /// order it). Founded on the vector-clock engine in [`crate::hb`].
    CrossDep,
    /// Conflicting persist operations (flush or non-temporal store) to
    /// one line from happens-before-concurrent epochs, with no ordering
    /// fence on either side: the device may apply the writebacks in
    /// either order, so the post-crash value diverges across outcomes.
    EpochRace,
    /// A store to a transaction-managed line (one previously written
    /// under an open durable transaction) issued with no transaction
    /// open on the storing thread: the update bypasses undo/redo-log
    /// protection and a crash can leave the region torn.
    TxAtomicity,
    /// A recovery-phase load of a line that was written before the
    /// crash point but not proven durable at any fence preceding it
    /// (and not rewritten during recovery): recovery is consuming a
    /// value the crash may not have preserved.
    RecoveryRead,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::Unflushed,
        Rule::Unordered,
        Rule::RedundantFlush,
        Rule::DoubleFence,
        Rule::CrossDep,
        Rule::EpochRace,
        Rule::TxAtomicity,
        Rule::RecoveryRead,
    ];

    /// The stable identifier used in diagnostics, JSON, and tests.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Unflushed => "P-UNFLUSHED",
            Rule::Unordered => "P-UNORDERED",
            Rule::RedundantFlush => "P-REDUNDANT-FLUSH",
            Rule::DoubleFence => "P-DOUBLE-FENCE",
            Rule::CrossDep => "P-CROSS-DEP",
            Rule::EpochRace => "P-EPOCH-RACE",
            Rule::TxAtomicity => "P-TX-ATOMICITY",
            Rule::RecoveryRead => "P-RECOVERY-READ",
        }
    }

    /// Parse a stable identifier back into its rule.
    pub fn parse(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    fn bit(self) -> u8 {
        Rule::ALL
            .iter()
            .position(|r| *r == self)
            .expect("rule in ALL") as u8
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// A selection of rules to report, for `--check-rules`-style filtering.
///
/// The checker always runs every state machine (later rules may depend
/// on state earlier events built up); a `RuleSet` only filters which
/// findings are *reported*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet(u8);

impl RuleSet {
    /// Every rule enabled — the default.
    pub fn all() -> RuleSet {
        RuleSet((1u16 << Rule::ALL.len()).wrapping_sub(1) as u8)
    }

    /// Whether `rule`'s findings are reported.
    pub fn contains(self, rule: Rule) -> bool {
        self.0 & (1 << rule.bit()) != 0
    }

    /// True when no rule was filtered out.
    pub fn is_all(self) -> bool {
        self == RuleSet::all()
    }

    /// The enabled rules, in [`Rule::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Rule> {
        Rule::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// Parse a comma-separated list of stable rule ids
    /// (`"P-UNFLUSHED,P-EPOCH-RACE"`). Whitespace around ids is
    /// tolerated; an empty list or an unknown id is an error carrying
    /// the offending token.
    ///
    /// # Errors
    ///
    /// A human-readable description of the bad token.
    pub fn from_ids(csv: &str) -> Result<RuleSet, String> {
        let mut set = RuleSet(0);
        for token in csv.split(',') {
            let token = token.trim();
            if token.is_empty() {
                return Err("empty rule id in list".into());
            }
            match Rule::parse(token) {
                Some(r) => set.0 |= 1 << r.bit(),
                None => {
                    return Err(format!(
                        "unknown rule id {token:?} (known: {})",
                        Rule::ALL.map(Rule::id).join(", ")
                    ))
                }
            }
        }
        Ok(set)
    }
}

impl Default for RuleSet {
    fn default() -> RuleSet {
        RuleSet::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for r in Rule::ALL {
            assert!(seen.insert(r.id()));
            assert!(r.id().starts_with("P-"));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn severity_orders_error_above_warn() {
        assert!(Severity::Error > Severity::Warn);
        assert_eq!(
            format!("{}/{}", Severity::Warn, Severity::Error),
            "warn/error"
        );
    }

    #[test]
    fn parse_round_trips_every_rule() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
        }
        assert_eq!(Rule::parse("P-NOPE"), None);
        assert_eq!(Rule::parse(""), None);
    }

    #[test]
    fn rule_set_all_contains_everything() {
        let all = RuleSet::all();
        assert!(all.is_all());
        for r in Rule::ALL {
            assert!(all.contains(r));
        }
        assert_eq!(all.iter().count(), Rule::ALL.len());
        assert_eq!(RuleSet::default(), all);
    }

    #[test]
    fn rule_set_from_ids_selects_subset() {
        let set = RuleSet::from_ids("P-UNFLUSHED, P-EPOCH-RACE").unwrap();
        assert!(set.contains(Rule::Unflushed));
        assert!(set.contains(Rule::EpochRace));
        assert!(!set.contains(Rule::CrossDep));
        assert!(!set.is_all());
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn rule_set_from_ids_rejects_garbage() {
        let err = RuleSet::from_ids("P-UNFLUSHED,P-BOGUS").unwrap_err();
        assert!(err.contains("P-BOGUS"), "{err}");
        assert!(RuleSet::from_ids("").is_err());
        assert!(RuleSet::from_ids("P-UNFLUSHED,,P-CROSS-DEP").is_err());
    }
}
