//! Rule identities and severities.

/// How bad a finding is.
///
/// The suite gate (`whisper-report --check`, CI) fails only on
/// [`Severity::Error`]; warnings are performance diagnostics and
/// end-of-trace heuristics that a correct program may still produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably a crash-consistency bug.
    Warn,
    /// A durability-discipline violation.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The five persistency rules, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A store was still dirty — no covering `clwb`/`clflushopt`/NT
    /// store — at a transaction commit or at the end of the trace.
    Unflushed,
    /// A flush was not followed by an `sfence` before the next
    /// dependent store to the same line, a transaction commit, or the
    /// end of the trace — the flushed data has no ordering point.
    Unordered,
    /// A flush of a clean line or of a line already flushed and fenced:
    /// wasted PM write bandwidth.
    RedundantFlush,
    /// Two fences from one thread with no PM store or flush between
    /// them: the second fence orders nothing.
    DoubleFence,
    /// Two threads had in-flight (unfenced) stores to the same line at
    /// the same time: whichever epoch a crash cuts, the line's durable
    /// value is a race outcome (the paper's §4 cross-thread dependency,
    /// minus the fence that would order it).
    CrossDep,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::Unflushed,
        Rule::Unordered,
        Rule::RedundantFlush,
        Rule::DoubleFence,
        Rule::CrossDep,
    ];

    /// The stable identifier used in diagnostics, JSON, and tests.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Unflushed => "P-UNFLUSHED",
            Rule::Unordered => "P-UNORDERED",
            Rule::RedundantFlush => "P-REDUNDANT-FLUSH",
            Rule::DoubleFence => "P-DOUBLE-FENCE",
            Rule::CrossDep => "P-CROSS-DEP",
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for r in Rule::ALL {
            assert!(seen.insert(r.id()));
            assert!(r.id().starts_with("P-"));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn severity_orders_error_above_warn() {
        assert!(Severity::Error > Severity::Warn);
        assert_eq!(
            format!("{}/{}", Severity::Warn, Severity::Error),
            "warn/error"
        );
    }
}
