//! `pmcheck` — a static persistency-bug checker over PM traces.
//!
//! WHISPER measures the discipline of stores, flushes, fences, and
//! transaction boundaries; this crate *verifies* it. The checker makes
//! a single streaming pass over a recorded [`pmtrace`] event stream —
//! no replay, no simulated machine — tracking a per-cache-line state
//! machine (`Dirty → Flushed → Durable`) plus per-thread epoch and
//! transaction context alongside a vector-clock happens-before engine
//! ([`hb`]), and reports violations of eight rules with stable ids:
//!
//! | rule id             | severity     | what it catches                          |
//! |---------------------|--------------|------------------------------------------|
//! | `P-UNFLUSHED`       | error / warn | store still dirty at tx commit (error) or trace end (warn) with no covering `clwb`/`clflushopt`/NT store |
//! | `P-UNORDERED`       | error / warn | flush not followed by an `sfence` before the next dependent store or commit (error), or still pending at trace end (warn) |
//! | `P-REDUNDANT-FLUSH` | warn         | flush of a clean or already-flushed-and-fenced line (a performance bug, not a correctness bug) |
//! | `P-DOUBLE-FENCE`    | warn         | back-to-back fences with no intervening PM work |
//! | `P-CROSS-DEP`       | error        | cross-thread same-line store conflict between happens-before-concurrent unfenced epochs (a durability race) |
//! | `P-EPOCH-RACE`      | error        | conflicting persists (flush / NT store) of one line from happens-before-concurrent epochs, no ordering fence on either side |
//! | `P-TX-ATOMICITY`    | error        | store to a transaction-managed line with no transaction open — the update bypasses undo/redo-log protection |
//! | `P-RECOVERY-READ`   | error        | recovery-phase load of a line not proven durable at any fence preceding the crash point |
//!
//! The checker is deliberately *trace-shaped*: it sees exactly what the
//! hardware persistence domain sees (PM stores, line flushes, fences,
//! tx markers) and nothing else, so it can check archived `.wtr` traces
//! as easily as live runs. See `DESIGN.md` § "Static analysis
//! (`pmcheck`)" for each rule's precise state machine and known
//! limitations.
//!
//! # Example
//!
//! ```
//! use pmtrace::{Category, Tid, TraceBuffer};
//!
//! let mut t = TraceBuffer::new();
//! let tid = Tid(0);
//! t.pm_store(tid, 0, 8, false, Category::UserData, 10);
//! // Bug: no clwb before the fence — the store may never persist.
//! t.fence(tid, 20);
//! let report = pmcheck::check_events(t.events());
//! assert_eq!(report.count(pmcheck::Rule::Unflushed), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
pub mod hb;
pub mod rewrite;
mod rules;
pub mod seeded;

pub use checker::{check_events, check_events_with, CheckReport, Checker, Finding};
pub use rewrite::{rewrite_events, RewriteReport};
pub use rules::{Rule, RuleSet, Severity};
