//! Happens-before analysis over recorded traces (paper §5.2).
//!
//! A second pass over a [`pmtrace`] stream that reconstructs the
//! ordering the *program* guarantees — not just the one interleaving
//! the recorder happened to observe. The model is FastTrack-shaped:
//!
//! - every thread carries a [`VClock`]; each trace event ticks the
//!   issuing thread's own component;
//! - a **fence** *releases* every line the closing epoch stored: the
//!   thread's clock is joined into the line's release clock (an epoch
//!   boundary publishes its stores, §5.1);
//! - a **transaction commit** likewise releases the lines the
//!   transaction wrote (commit publishes);
//! - a **store or load** of a line *acquires* its release clock — the
//!   accessor is coherence-ordered after every published epoch that
//!   wrote the line (observed same-line communication).
//!
//! Two accesses are HB-ordered iff the later one's clock has seen the
//! earlier one's own-component tick; otherwise they are concurrent
//! under *some* legal linearization. `P-CROSS-DEP` and `P-EPOCH-RACE`
//! in [`crate::checker`] are founded on exactly this relation, and the
//! same clocks yield the per-app **epoch dependency graph**
//! ([`EpochGraph`]) behind the paper's Fig. 5 cross-thread dependency
//! statistics.
//!
//! Joining *more* ordering is the conservative direction here: every
//! release edge the model admits suppresses findings, so a program
//! clean under the recorded order stays clean under the HB refounding
//! (no new false positives), while transitivity lets the rules catch
//! races the recorded interleaving hid (fewer false negatives).

use pmem::{lines_spanning, FxHashMap, FxHashSet, Line};
use pmobs::Json;
use pmtrace::{Event, EventKind, Tid};

/// A vector clock: one logical-time component per thread slot.
///
/// Slots are dense indices allocated by the engine in order of first
/// appearance; missing components read as 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    c: Vec<u64>,
}

impl VClock {
    /// The component for `slot` (0 if never set).
    pub fn get(&self, slot: usize) -> u64 {
        self.c.get(slot).copied().unwrap_or(0)
    }

    fn tick(&mut self, slot: usize) {
        if self.c.len() <= slot {
            self.c.resize(slot + 1, 0);
        }
        self.c[slot] += 1;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        if self.c.len() < other.c.len() {
            self.c.resize(other.c.len(), 0);
        }
        for (i, v) in other.c.iter().enumerate() {
            if self.c[i] < *v {
                self.c[i] = *v;
            }
        }
    }
}

/// Per-line release record: the join of every releasing epoch's clock,
/// plus provenance for graph edges and (in recording mode) for
/// edge-reachability cross-checks.
#[derive(Debug, Default)]
struct Release {
    clock: VClock,
    /// Last *fence*-releasing closed epoch node (graph provenance).
    node: Option<u32>,
    /// Recording mode: every release event's id (acquire edges).
    events: Vec<u32>,
}

/// Recording-mode state backing [`HbIndex`].
#[derive(Debug, Default)]
struct Recording {
    stamps: Vec<VClock>,
    slots: Vec<usize>,
    edges: Vec<(u32, u32)>,
    last_of_slot: Vec<Option<u32>>,
    pending: Option<usize>,
}

impl Recording {
    fn seal(&mut self, clocks: &[VClock]) {
        if let Some(s) = self.pending.take() {
            self.stamps.push(clocks[s].clone());
        }
    }
}

/// An epoch node under construction.
#[derive(Debug)]
struct BuildNode {
    slot: usize,
    index: u64,
    start_ns: u64,
    end_ns: u64,
    open_clock: VClock,
    close_tick: u64,
    lines: FxHashSet<Line>,
    stores: u32,
    durable: bool,
    closed: bool,
}

/// Graph-mode state backing [`EpochGraph`].
#[derive(Debug, Default)]
struct GraphBuilder {
    nodes: Vec<BuildNode>,
    open: Vec<Option<u32>>,
    index_ctr: Vec<u64>,
    edges: FxHashSet<(u32, u32)>,
}

impl GraphBuilder {
    fn grow(&mut self, slot: usize) {
        if self.open.len() <= slot {
            self.open.resize(slot + 1, None);
            self.index_ctr.resize(slot + 1, 0);
        }
    }

    /// The open node for `slot`, created at this (first) store.
    fn touch(&mut self, slot: usize, at_ns: u64, clock: &VClock, line: Line) -> u32 {
        self.grow(slot);
        let id = match self.open[slot] {
            Some(id) => id,
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(BuildNode {
                    slot,
                    index: self.index_ctr[slot],
                    start_ns: at_ns,
                    end_ns: at_ns,
                    open_clock: clock.clone(),
                    close_tick: 0,
                    lines: FxHashSet::default(),
                    stores: 0,
                    durable: false,
                    closed: false,
                });
                self.open[slot] = Some(id);
                id
            }
        };
        let n = &mut self.nodes[id as usize];
        n.lines.insert(line);
        n.stores += 1;
        id
    }

    fn close(&mut self, slot: usize, at_ns: u64, clock: &VClock, durable: bool) -> Option<u32> {
        self.grow(slot);
        let id = self.open[slot].take()?;
        let n = &mut self.nodes[id as usize];
        n.end_ns = at_ns;
        n.close_tick = clock.get(slot);
        n.durable = durable;
        n.closed = true;
        self.index_ctr[slot] += 1;
        Some(id)
    }
}

/// Streaming vector-clock happens-before engine.
///
/// Drive it either with [`apply`](HbEngine::apply) (one call per trace
/// event) or, as [`crate::checker::Checker`] does, with
/// [`begin_event`](HbEngine::begin_event) followed by the per-line
/// handlers — the clock semantics are identical; only conflict
/// *reporting* differs (persist conflicts are line-state-gated by the
/// checker and ignored by `apply`).
#[derive(Debug, Default)]
pub struct HbEngine {
    slots: FxHashMap<Tid, usize>,
    tids: Vec<Tid>,
    clocks: Vec<VClock>,
    /// Last write per (line, slot): the writer's own-component tick.
    writes: FxHashMap<Line, Vec<(usize, u64)>>,
    released: FxHashMap<Line, Release>,
    /// Pending (unfenced) persist per (line, slot).
    persists: FxHashMap<Line, Vec<(usize, u64)>>,
    open_lines: Vec<FxHashSet<Line>>,
    open_persists: Vec<FxHashSet<Line>>,
    tx_lines: Vec<FxHashSet<Line>>,
    in_tx: Vec<bool>,
    cur: Option<(usize, u32)>,
    cur_ns: u64,
    events_seen: u32,
    record: Option<Recording>,
    graph: Option<GraphBuilder>,
}

impl HbEngine {
    /// A fresh engine with neither recording nor graph building.
    pub fn new() -> HbEngine {
        HbEngine::default()
    }

    /// Keep per-event stamps and explicit HB edges (for [`HbIndex`]).
    fn enable_recording(&mut self) {
        self.record = Some(Recording::default());
    }

    /// Build epoch nodes and cross-thread edges (for [`EpochGraph`]).
    fn enable_graph(&mut self) {
        self.graph = Some(GraphBuilder::default());
    }

    fn slot(&mut self, tid: Tid) -> usize {
        if let Some(s) = self.slots.get(&tid) {
            return *s;
        }
        let s = self.tids.len();
        self.slots.insert(tid, s);
        self.tids.push(tid);
        self.clocks.push(VClock::default());
        self.open_lines.push(FxHashSet::default());
        self.open_persists.push(FxHashSet::default());
        self.tx_lines.push(FxHashSet::default());
        self.in_tx.push(false);
        if let Some(rec) = &mut self.record {
            rec.last_of_slot.push(None);
        }
        s
    }

    /// Start a new trace event on `tid` at `at_ns`: seals the previous
    /// event's stamp and ticks the thread's clock. Every subsequent
    /// per-line handler call belongs to this event.
    pub fn begin_event(&mut self, tid: Tid, at_ns: u64) {
        let s = self.slot(tid);
        if let Some(rec) = &mut self.record {
            rec.seal(&self.clocks);
        }
        self.clocks[s].tick(s);
        let id = self.events_seen;
        self.events_seen += 1;
        self.cur = Some((s, id));
        self.cur_ns = at_ns;
        if let Some(rec) = &mut self.record {
            rec.slots.push(s);
            if let Some(prev) = rec.last_of_slot[s] {
                rec.edges.push((prev, id));
            }
            rec.last_of_slot[s] = Some(id);
            rec.pending = Some(s);
        }
    }

    fn cur(&self) -> (usize, u32) {
        self.cur.expect("begin_event before handlers")
    }

    /// Join `line`'s release clock into the current thread's clock.
    fn acquire(&mut self, s: usize, id: u32, line: Line) {
        if let Some(rel) = self.released.get(&line) {
            self.clocks[s].join(&rel.clock);
            if let Some(rec) = &mut self.record {
                for &src in &rel.events {
                    rec.edges.push((src, id));
                }
            }
        }
    }

    /// A store to `line` by the current event's thread. Returns the
    /// threads whose last write to the line is HB-concurrent with this
    /// one — the `P-CROSS-DEP` conflict set.
    pub fn store(&mut self, line: Line) -> Vec<Tid> {
        let (s, id) = self.cur();
        let rel_node = self.released.get(&line).and_then(|r| r.node);
        self.acquire(s, id, line);
        let mut conflicts = Vec::new();
        if let Some(ws) = self.writes.get(&line) {
            for &(u, k) in ws {
                if u != s && self.clocks[s].get(u) < k {
                    conflicts.push(self.tids[u]);
                }
            }
        }
        let own = self.clocks[s].get(s);
        let ws = self.writes.entry(line).or_default();
        match ws.iter_mut().find(|(u, _)| *u == s) {
            Some(w) => w.1 = own,
            None => ws.push((s, own)),
        }
        self.open_lines[s].insert(line);
        if self.in_tx[s] {
            self.tx_lines[s].insert(line);
        }
        if let Some(g) = &mut self.graph {
            let node = g.touch(s, self.cur_ns, &self.clocks[s], line);
            if let Some(src) = rel_node {
                if g.nodes[src as usize].slot != s {
                    g.edges.insert((src, node));
                }
            }
        }
        conflicts
    }

    /// A load of `line`: acquire only (reading the line is
    /// coherence-ordered after every published epoch that wrote it).
    pub fn load(&mut self, line: Line) {
        let (s, id) = self.cur();
        self.acquire(s, id, line);
    }

    /// A persist operation (covering flush or NT store) of `line`.
    /// Returns the threads with a *pending* (unfenced) persist of the
    /// same line that is HB-concurrent with this one — the
    /// `P-EPOCH-RACE` conflict set.
    pub fn persist(&mut self, line: Line) -> Vec<Tid> {
        let (s, _) = self.cur();
        let mut conflicts = Vec::new();
        let entries = self.persists.entry(line).or_default();
        for &(u, k) in entries.iter() {
            if u != s && self.clocks[s].get(u) < k {
                conflicts.push(self.tids[u]);
            }
        }
        let own = self.clocks[s].get(s);
        match entries.iter_mut().find(|(u, _)| *u == s) {
            Some(e) => e.1 = own,
            None => entries.push((s, own)),
        }
        self.open_persists[s].insert(line);
        conflicts
    }

    /// A fence on the current event's thread: closes the epoch,
    /// releasing every line it stored and retiring the thread's
    /// pending persists.
    pub fn fence(&mut self, durable: bool) {
        let (s, id) = self.cur();
        let node = match &mut self.graph {
            Some(g) => g.close(s, self.cur_ns, &self.clocks[s], durable),
            None => None,
        };
        let lines: Vec<Line> = self.open_lines[s].drain().collect();
        for line in lines {
            let r = self.released.entry(line).or_default();
            r.clock.join(&self.clocks[s]);
            if node.is_some() {
                r.node = node;
            }
            if self.record.is_some() {
                r.events.push(id);
            }
        }
        let persisted: Vec<Line> = self.open_persists[s].drain().collect();
        for line in persisted {
            if let Some(entries) = self.persists.get_mut(&line) {
                entries.retain(|(u, _)| *u != s);
                if entries.is_empty() {
                    self.persists.remove(&line);
                }
            }
        }
    }

    /// Transaction begin: subsequent stores join the commit's release
    /// set.
    pub fn tx_begin(&mut self) {
        let (s, _) = self.cur();
        self.in_tx[s] = true;
        self.tx_lines[s].clear();
    }

    /// Transaction commit: releases every line the transaction stored
    /// (commit publishes the writes).
    pub fn tx_end(&mut self) {
        let (s, id) = self.cur();
        self.in_tx[s] = false;
        let lines: Vec<Line> = self.tx_lines[s].drain().collect();
        for line in lines {
            let r = self.released.entry(line).or_default();
            r.clock.join(&self.clocks[s]);
            if self.record.is_some() {
                r.events.push(id);
            }
        }
    }

    /// Fold one whole trace event (the standalone-analysis driver; the
    /// checker instead interleaves the per-line handlers with its line
    /// state machines).
    pub fn apply(&mut self, ev: &Event) {
        self.begin_event(ev.tid, ev.at_ns);
        match ev.kind {
            EventKind::PmStore { addr, len, nt, .. } => {
                for (line, _, _) in lines_spanning(addr, len as usize) {
                    self.store(line);
                    if nt {
                        self.persist(line);
                    }
                }
            }
            EventKind::Flush { addr } => {
                self.persist(Line::containing(addr));
            }
            EventKind::Fence => self.fence(false),
            EventKind::DFence => self.fence(true),
            EventKind::TxBegin { .. } => self.tx_begin(),
            EventKind::TxEnd { .. } => self.tx_end(),
            EventKind::PmLoad { addr } => self.load(Line::containing(addr)),
            EventKind::RecoveryBegin => {}
        }
    }
}

/// Per-event happens-before index over a full trace: vector-clock
/// stamps plus the explicit edge list (program order + release-acquire)
/// whose transitive closure the stamps summarize. Built for property
/// tests and small-trace analysis; memory is O(events × threads).
#[derive(Debug)]
pub struct HbIndex {
    stamps: Vec<VClock>,
    slots: Vec<usize>,
    edges: Vec<(u32, u32)>,
}

impl HbIndex {
    /// Index a whole trace.
    pub fn of(events: &[Event]) -> HbIndex {
        let mut eng = HbEngine::new();
        eng.enable_recording();
        for ev in events {
            eng.apply(ev);
        }
        let mut rec = eng.record.take().expect("recording enabled");
        rec.seal(&eng.clocks);
        HbIndex {
            stamps: rec.stamps,
            slots: rec.slots,
            edges: rec.edges,
        }
    }

    /// Number of indexed events.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// Whether event `a` happens-before event `b` (strict: an event
    /// never happens-before itself) — by vector-clock comparison.
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let sa = self.slots[a];
        self.stamps[b].get(sa) >= self.stamps[a].get(sa)
    }

    /// The explicit HB edges (program order and release→acquire), as
    /// `(earlier event, later event)` index pairs. The transitive
    /// closure of this relation equals [`happens_before`][Self::happens_before].
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

/// One node of the epoch dependency graph: a store-containing epoch,
/// aligned with [`pmtrace::analysis::split_epochs`] numbering.
#[derive(Debug, Clone)]
pub struct EpochNode {
    /// Issuing thread.
    pub tid: Tid,
    /// Per-thread store-epoch ordinal (matches `Epoch::index`).
    pub index: u64,
    /// Timestamp of the epoch's first store.
    pub start_ns: u64,
    /// Timestamp of the closing fence.
    pub end_ns: u64,
    /// Unique 64 B lines stored.
    pub lines: usize,
    /// Store operations in the epoch.
    pub stores: u32,
    /// True when closed by a durability fence.
    pub durable: bool,
}

/// The per-app epoch dependency graph (paper §5.2, Fig. 5): nodes are
/// store-containing epochs, cross edges are release→acquire
/// dependencies between epochs of *different* threads, and per-thread
/// program order chains the rest. Acyclic by construction: every edge
/// leaves an epoch already closed when its target observed it.
#[derive(Debug)]
pub struct EpochGraph {
    /// Threads with at least one event, in slot order.
    pub threads: Vec<Tid>,
    /// Epoch nodes, in creation (first-store) order.
    pub nodes: Vec<EpochNode>,
    /// Cross-thread dependency edges as `(from, to)` node indices,
    /// deduplicated and sorted.
    pub cross_edges: Vec<(u32, u32)>,
    /// Count of implicit per-thread program-order edges.
    pub po_edges: usize,
    open_clocks: Vec<VClock>,
    close_ticks: Vec<u64>,
    node_slots: Vec<usize>,
    per_thread: Vec<Vec<u32>>,
}

impl EpochGraph {
    /// Build the graph for a whole trace. Epochs that never closed
    /// (trailing unfenced stores) are dropped, as in
    /// [`pmtrace::analysis::for_each_epoch`].
    pub fn build(events: &[Event]) -> EpochGraph {
        let mut eng = HbEngine::new();
        eng.enable_graph();
        for ev in events {
            eng.apply(ev);
        }
        let g = eng.graph.take().expect("graph enabled");
        let mut map: Vec<Option<u32>> = vec![None; g.nodes.len()];
        let mut nodes = Vec::new();
        let mut open_clocks = Vec::new();
        let mut close_ticks = Vec::new();
        let mut node_slots = Vec::new();
        let mut per_thread: Vec<Vec<u32>> = vec![Vec::new(); eng.tids.len()];
        for (i, n) in g.nodes.iter().enumerate() {
            if !n.closed {
                continue;
            }
            let id = nodes.len() as u32;
            map[i] = Some(id);
            nodes.push(EpochNode {
                tid: eng.tids[n.slot],
                index: n.index,
                start_ns: n.start_ns,
                end_ns: n.end_ns,
                lines: n.lines.len(),
                stores: n.stores,
                durable: n.durable,
            });
            open_clocks.push(n.open_clock.clone());
            close_ticks.push(n.close_tick);
            node_slots.push(n.slot);
            per_thread[n.slot].push(id);
        }
        let mut cross_edges: Vec<(u32, u32)> = g
            .edges
            .iter()
            .filter_map(|(a, b)| Some((map[*a as usize]?, map[*b as usize]?)))
            .collect();
        cross_edges.sort_unstable();
        cross_edges.dedup();
        let po_edges = per_thread.iter().map(|c| c.len().saturating_sub(1)).sum();
        EpochGraph {
            threads: eng.tids,
            nodes,
            cross_edges,
            po_edges,
            open_clocks,
            close_ticks,
            node_slots,
            per_thread,
        }
    }

    /// Distinct epochs with at least one incoming cross-thread edge —
    /// the numerator of the paper's "epochs with cross dependencies".
    pub fn epochs_with_cross_dep(&self) -> usize {
        let mut dst: Vec<u32> = self.cross_edges.iter().map(|(_, b)| *b).collect();
        dst.sort_unstable();
        dst.dedup();
        dst.len()
    }

    /// Whether epoch node `a` happens-before epoch node `b`: same
    /// thread in index order, or `b`'s first store had already observed
    /// `a`'s closing fence.
    fn node_before(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (self.node_slots[a as usize], self.node_slots[b as usize]);
        if sa == sb {
            return self.nodes[a as usize].index < self.nodes[b as usize].index;
        }
        self.open_clocks[b as usize].get(sa) >= self.close_ticks[a as usize]
    }

    /// The largest set of pairwise HB-concurrent epochs — the graph's
    /// maximum antichain, i.e. how many epochs can be in flight
    /// simultaneously under some legal linearization. At most one
    /// epoch per thread qualifies (program order chains the rest), so
    /// the search enumerates thread subsets and, per subset, runs a
    /// monotone index-raising fixpoint: whenever the candidate of
    /// thread `x` happens-before the candidate of thread `y`, `x`'s
    /// candidate advances past every epoch ordered before `y`'s —
    /// sound because later epochs only close later, complete because a
    /// raise never skips a feasible tuple.
    pub fn max_antichain(&self) -> usize {
        let live: Vec<usize> = (0..self.per_thread.len())
            .filter(|s| !self.per_thread[*s].is_empty())
            .collect();
        let mut best = 0usize;
        for mask in 1u32..(1 << live.len()) {
            let subset: Vec<usize> = live
                .iter()
                .copied()
                .enumerate()
                .filter_map(|(i, s)| (mask & (1 << i) != 0).then_some(s))
                .collect();
            if subset.len() <= best {
                continue;
            }
            if self.feasible(&subset) {
                best = subset.len();
            }
        }
        best
    }

    fn feasible(&self, subset: &[usize]) -> bool {
        let mut idx = vec![0usize; subset.len()];
        loop {
            let mut changed = false;
            for j in 0..subset.len() {
                let b = self.per_thread[subset[j]][idx[j]];
                for i in 0..subset.len() {
                    if i == j {
                        continue;
                    }
                    let chain = &self.per_thread[subset[i]];
                    // Advance past every epoch of thread i ordered
                    // before b (close ticks are strictly increasing
                    // along a chain, so the frontier is monotone).
                    while idx[i] < chain.len() && self.node_before(chain[idx[i]], b) {
                        idx[i] += 1;
                        changed = true;
                    }
                    if idx[i] == chain.len() {
                        return false;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// JSON export: stats plus full node and edge lists.
    pub fn to_json(&self, app: &str) -> Json {
        let nodes: Vec<Json> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Json::obj()
                    .field("id", i as u64)
                    .field("tid", u64::from(n.tid.0))
                    .field("index", n.index)
                    .field("start_ns", n.start_ns)
                    .field("end_ns", n.end_ns)
                    .field("lines", n.lines as u64)
                    .field("stores", u64::from(n.stores))
                    .field("durable", n.durable)
            })
            .collect();
        let edges: Vec<Json> = self
            .cross_edges
            .iter()
            .map(|(a, b)| {
                Json::obj()
                    .field("from", u64::from(*a))
                    .field("to", u64::from(*b))
            })
            .collect();
        Json::obj()
            .field("app", app)
            .field("threads", self.threads.len() as u64)
            .field("epochs", self.nodes.len() as u64)
            .field("po_edges", self.po_edges as u64)
            .field("cross_edges", self.cross_edges.len() as u64)
            .field("epochs_with_cross_dep", self.epochs_with_cross_dep() as u64)
            .field("max_antichain", self.max_antichain() as u64)
            .field("nodes", nodes)
            .field("edges", edges)
    }

    /// Graphviz DOT export: one node per epoch (`t<tid>/e<index>`),
    /// gray program-order chains, red cross-thread dependency edges.
    pub fn to_dot(&self, app: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{app}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontsize=9];");
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}/e{}\\n{} line(s)\"{}];",
                n.tid,
                n.index,
                n.lines,
                if n.durable { ", style=bold" } else { "" }
            );
        }
        for chain in &self.per_thread {
            for w in chain.windows(2) {
                let _ = writeln!(out, "  n{} -> n{} [color=gray];", w[0], w[1]);
            }
        }
        for (a, b) in &self.cross_edges {
            let _ = writeln!(out, "  n{a} -> n{b} [color=red, penwidth=1.5];");
        }
        out.push_str("}\n");
        out
    }
}

/// Trace-level durability proof for crash-image cross-validation: for
/// each requested 1-based fence ordinal (ascending), the lines the
/// analysis proves **spec-invariant durable** *at that fence* — a crash
/// at that ordinal must materialize these lines' durable bytes under
/// every crash spec, so an image that disagrees on one of them exhibits
/// a state this analysis declares order-impossible.
///
/// Two conditions must hold, mirroring two layers of the machine:
///
/// 1. *Coverage* — the checker's line-state machine proves the line
///    durable: flushed, retired by the flushing thread's fence, and
///    not re-stored since (NT stores self-flush, foreign `clwb`s take
///    over coverage, a dependent store re-dirties).
/// 2. *No live write-back* — no `clwb` snapshot or write-combining
///    entry of the line is still in flight anywhere. The machine never
///    displaces another thread's pending snapshot (a cacheable store
///    only supersedes WCB entries), so a stale snapshot can out-live
///    condition 1 and a crash spec may persist it over the durable
///    bytes; such lines are *not* spec-invariant and are excluded.
///
/// Crash workloads also run untraced setup before the trace starts, so
/// entries invisible to the trace can be in flight at its first event.
/// Every such entry drains at its owning thread's first traced fence;
/// the proof therefore stays empty until every thread that appears in
/// the trace has fenced at least once.
pub fn durable_lines_at_fences(events: &[Event], points: &[u64]) -> Vec<Vec<Line>> {
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Dirty,
        Flushed { by: Tid, nt: bool },
        Durable,
    }
    // Coverage layer: the checker's line-state machine.
    let mut lines: FxHashMap<Line, S> = FxHashMap::default();
    let mut pending: FxHashMap<Tid, FxHashSet<Line>> = FxHashMap::default();
    // Machine layer: live in-flight write-back entries per line. A
    // `clwb` of a dirty line snapshots it (`snaps`, a multiset — the
    // entry lives until the *flusher's* fence); an NT store occupies
    // one WCB slot per (thread, line) until a fence or a superseding
    // cacheable store.
    let mut live: FxHashMap<Line, u32> = FxHashMap::default();
    let mut snaps: FxHashMap<Tid, Vec<Line>> = FxHashMap::default();
    let mut wcbs: FxHashMap<Tid, FxHashSet<Line>> = FxHashMap::default();
    let unlive = |live: &mut FxHashMap<Line, u32>, line: Line| {
        if let Some(n) = live.get_mut(&line) {
            *n = n.saturating_sub(1);
        }
    };
    // Untraced-setup guard: which threads have drained their pre-trace
    // in-flight entries with a traced fence.
    let all_tids: FxHashSet<Tid> = events.iter().map(|e| e.tid).collect();
    let mut fenced: FxHashSet<Tid> = FxHashSet::default();
    let mut out = Vec::with_capacity(points.len());
    let mut next = 0usize;
    let mut ordinal = 0u64;
    debug_assert!(points.windows(2).all(|w| w[0] <= w[1]), "points ascending");
    for ev in events {
        if next == points.len() {
            break;
        }
        match ev.kind {
            EventKind::PmStore { addr, len, nt, .. } => {
                for (line, _, _) in lines_spanning(addr, len as usize) {
                    if let Some(S::Flushed { by, nt: _ }) = lines.get(&line).copied() {
                        if by != ev.tid || !nt {
                            if let Some(p) = pending.get_mut(&by) {
                                p.remove(&line);
                            }
                        }
                    }
                    if nt {
                        lines.insert(
                            line,
                            S::Flushed {
                                by: ev.tid,
                                nt: true,
                            },
                        );
                        pending.entry(ev.tid).or_default().insert(line);
                        if wcbs.entry(ev.tid).or_default().insert(line) {
                            *live.entry(line).or_insert(0) += 1;
                        }
                    } else {
                        lines.insert(line, S::Dirty);
                        // A cacheable store supersedes every WCB entry
                        // of the line — but not pending snapshots.
                        for w in wcbs.values_mut() {
                            if w.remove(&line) {
                                unlive(&mut live, line);
                            }
                        }
                    }
                }
            }
            EventKind::Flush { addr } => {
                let line = Line::containing(addr);
                match lines.get(&line).copied() {
                    None | Some(S::Durable) => {}
                    Some(S::Dirty) => {
                        lines.insert(
                            line,
                            S::Flushed {
                                by: ev.tid,
                                nt: false,
                            },
                        );
                        pending.entry(ev.tid).or_default().insert(line);
                        // The machine snapshots a *dirty* line into the
                        // flusher's pending set.
                        snaps.entry(ev.tid).or_default().push(line);
                        *live.entry(line).or_insert(0) += 1;
                    }
                    Some(S::Flushed { by, nt }) => {
                        if !nt && by != ev.tid {
                            // Coverage takeover only: the line is clean
                            // in the machine, so no new snapshot.
                            if let Some(p) = pending.get_mut(&by) {
                                p.remove(&line);
                            }
                            lines.insert(
                                line,
                                S::Flushed {
                                    by: ev.tid,
                                    nt: false,
                                },
                            );
                            pending.entry(ev.tid).or_default().insert(line);
                        }
                    }
                }
            }
            EventKind::Fence | EventKind::DFence => {
                if let Some(p) = pending.get_mut(&ev.tid) {
                    for line in p.drain() {
                        if let Some(S::Flushed { by, .. }) = lines.get(&line) {
                            if *by == ev.tid {
                                lines.insert(line, S::Durable);
                            }
                        }
                    }
                }
                // The fence drains every in-flight entry this thread
                // owns (stale ones included).
                if let Some(s) = snaps.get_mut(&ev.tid) {
                    for line in s.drain(..) {
                        unlive(&mut live, line);
                    }
                }
                if let Some(w) = wcbs.get_mut(&ev.tid) {
                    for line in std::mem::take(w) {
                        unlive(&mut live, line);
                    }
                }
                fenced.insert(ev.tid);
                ordinal += 1;
                while next < points.len() && points[next] == ordinal {
                    let mut durable: Vec<Line> = if fenced.len() == all_tids.len() {
                        lines
                            .iter()
                            .filter(|(l, s)| {
                                matches!(s, S::Durable) && live.get(l).copied().unwrap_or(0) == 0
                            })
                            .map(|(l, _)| *l)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    durable.sort_unstable();
                    out.push(durable);
                    next += 1;
                }
            }
            EventKind::TxBegin { .. }
            | EventKind::TxEnd { .. }
            | EventKind::PmLoad { .. }
            | EventKind::RecoveryBegin => {}
        }
    }
    // Points beyond the trace's fence count: nothing is provable.
    while out.len() < points.len() {
        out.push(Vec::new());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtrace::{analysis, Category, TraceBuffer};

    const T0: Tid = Tid(0);
    const T1: Tid = Tid(1);

    #[test]
    fn program_order_is_hb() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.flush(T0, 0, 2);
        t.fence(T0, 3);
        let idx = HbIndex::of(t.events());
        assert!(idx.happens_before(0, 1));
        assert!(idx.happens_before(1, 2));
        assert!(idx.happens_before(0, 2));
        assert!(!idx.happens_before(2, 0));
        assert!(!idx.happens_before(0, 0), "strict: irreflexive");
    }

    #[test]
    fn fence_release_store_acquire_orders_across_threads() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1); // 0
        t.fence(T0, 2); // 1: releases line 0
        t.pm_store(T1, 0, 8, false, Category::UserData, 3); // 2: acquires
        t.pm_store(T1, 64, 8, false, Category::UserData, 4); // 3
        let idx = HbIndex::of(t.events());
        assert!(idx.happens_before(0, 2));
        assert!(idx.happens_before(1, 2));
        assert!(idx.happens_before(0, 3), "transitively via program order");
        assert!(!idx.happens_before(2, 0));
    }

    #[test]
    fn unrelated_threads_are_concurrent() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.pm_store(T1, 64, 8, false, Category::UserData, 2);
        let idx = HbIndex::of(t.events());
        assert!(!idx.happens_before(0, 1));
        assert!(!idx.happens_before(1, 0));
    }

    #[test]
    fn tx_commit_releases_its_lines() {
        let mut t = TraceBuffer::new();
        t.tx_begin(T0, 1, 1); // 0
        t.pm_store(T0, 0, 8, false, Category::UserData, 2); // 1
        t.tx_end(T0, 1, 3); // 2: releases line 0 (no fence!)
        t.pm_load(T1, 0, 4); // 3: acquires
        let idx = HbIndex::of(t.events());
        assert!(idx.happens_before(1, 3));
        assert!(idx.happens_before(2, 3));
    }

    #[test]
    fn engine_reports_concurrent_writers() {
        let mut eng = HbEngine::new();
        eng.begin_event(T0, 1);
        assert!(eng.store(Line(0)).is_empty());
        eng.begin_event(T1, 2);
        assert_eq!(eng.store(Line(0)), vec![T0], "unfenced WAW is concurrent");
        // After T1 fences and T0 re-stores, the race is ordered.
        eng.begin_event(T1, 3);
        eng.fence(false);
        eng.begin_event(T0, 4);
        assert!(eng.store(Line(0)).is_empty(), "acquired t1's release");
    }

    #[test]
    fn engine_persist_conflicts_cleared_by_fence() {
        let mut eng = HbEngine::new();
        eng.begin_event(T0, 1);
        eng.store(Line(0));
        assert!(eng.persist(Line(0)).is_empty());
        eng.begin_event(T1, 2);
        eng.store(Line(0));
        assert_eq!(eng.persist(Line(0)), vec![T0], "both persists pending");
        // Each thread fences, retiring its own pending persist and
        // releasing the line; a later persist conflicts with nobody.
        eng.begin_event(T1, 3);
        eng.fence(false);
        eng.begin_event(T0, 4);
        eng.fence(false);
        eng.begin_event(T0, 5);
        eng.store(Line(0));
        assert!(
            eng.persist(Line(0)).is_empty(),
            "no pending foreign persists"
        );
    }

    #[test]
    fn graph_nodes_align_with_split_epochs() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.pm_store(T0, 64, 8, false, Category::UserData, 2);
        t.fence(T0, 3);
        t.fence(T0, 4); // empty epoch: no node
        t.pm_store(T0, 128, 8, false, Category::UserData, 5);
        t.dfence(T0, 6);
        t.pm_store(T0, 0, 8, false, Category::UserData, 7); // trailing: dropped
        let g = EpochGraph::build(t.events());
        let epochs = analysis::split_epochs(t.events());
        assert_eq!(g.nodes.len(), epochs.len());
        for (n, e) in g.nodes.iter().zip(&epochs) {
            assert_eq!(n.tid, e.tid);
            assert_eq!(n.index, e.index);
            assert_eq!(n.start_ns, e.start_ns);
            assert_eq!(n.end_ns, e.end_ns);
            assert_eq!(n.lines, e.lines.len());
            assert_eq!(n.durable, e.durable);
        }
        assert_eq!(g.po_edges, 1);
        assert!(g.cross_edges.is_empty());
    }

    #[test]
    fn graph_cross_edge_from_release_to_acquiring_epoch() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.fence(T0, 2); // closes t0/e0, releasing line 0
        t.pm_store(T1, 0, 8, false, Category::UserData, 3); // t1/e0 acquires
        t.fence(T1, 4);
        let g = EpochGraph::build(t.events());
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.cross_edges, vec![(0, 1)]);
        assert_eq!(g.epochs_with_cross_dep(), 1);
        // The ordered pair cannot be concurrent.
        assert_eq!(g.max_antichain(), 1);
    }

    #[test]
    fn graph_is_acyclic_by_construction() {
        // Ping-pong communication: edges alternate directions between
        // the threads' successive epochs but never cycle.
        let mut t = TraceBuffer::new();
        let mut now = 1;
        for round in 0..4u64 {
            let (a, b) = if round % 2 == 0 { (T0, T1) } else { (T1, T0) };
            t.pm_store(a, 0, 8, false, Category::UserData, now);
            t.fence(a, now + 1);
            t.pm_store(b, 0, 8, false, Category::UserData, now + 2);
            t.fence(b, now + 3);
            now += 4;
        }
        let g = EpochGraph::build(t.events());
        // Kahn toposort must consume every node.
        let n = g.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in &g.cross_edges {
            adj[*a as usize].push(*b as usize);
            indeg[*b as usize] += 1;
        }
        for chain in &g.per_thread {
            for w in chain.windows(2) {
                adj[w[0] as usize].push(w[1] as usize);
                indeg[w[1] as usize] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(seen, n, "epoch graph has a cycle");
    }

    #[test]
    fn max_antichain_counts_independent_threads() {
        let mut t = TraceBuffer::new();
        for (i, tid) in [T0, T1, Tid(2)].into_iter().enumerate() {
            t.pm_store(
                tid,
                i as u64 * 64,
                8,
                false,
                Category::UserData,
                1 + i as u64,
            );
            t.fence(tid, 10 + i as u64);
        }
        let g = EpochGraph::build(t.events());
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.max_antichain(), 3, "no ordering between the threads");
        assert_eq!(
            g.to_json("x").get("max_antichain").and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn dot_export_mentions_every_node() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.fence(T0, 2);
        t.pm_store(T1, 0, 8, false, Category::UserData, 3);
        t.fence(T1, 4);
        let g = EpochGraph::build(t.events());
        let dot = g.to_dot("sample");
        assert!(dot.contains("digraph \"sample\""), "{dot}");
        assert!(dot.contains("t0/e0"), "{dot}");
        assert!(dot.contains("t1/e0"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
    }

    #[test]
    fn durable_lines_tracks_the_state_machine() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.flush(T0, 0, 2);
        t.fence(T0, 3); // point 1: line 0 durable
        t.pm_store(T0, 0, 8, false, Category::UserData, 4); // re-dirtied
        t.pm_store(T0, 64, 8, true, Category::RedoLog, 5); // NT self-flush
        t.fence(T0, 6); // point 2: line 1 durable, line 0 not
        let d = durable_lines_at_fences(t.events(), &[1, 2]);
        assert_eq!(d[0], vec![Line(0)]);
        assert_eq!(d[1], vec![Line(1)]);
    }

    #[test]
    fn durable_lines_foreign_fence_does_not_retire() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.flush(T0, 0, 2);
        t.fence(T1, 3); // not the flusher's fence: retires nothing
        t.fence(T0, 4); // the flusher's fence does
        let d = durable_lines_at_fences(t.events(), &[1, 2]);
        assert!(d[0].is_empty());
        assert_eq!(d[1], vec![Line(0)]);
    }

    #[test]
    fn durable_lines_stale_snapshot_blocks_the_proof() {
        // T1 snapshots the line while it is dirty, then T0 re-stores
        // and persists it. Coverage says durable at T0's fence, but
        // T1's stale snapshot is still in flight — an adversarial
        // crash may persist it over the durable bytes, so the line is
        // only spec-invariant once T1's fence drains the snapshot.
        let mut t = TraceBuffer::new();
        t.fence(T1, 1); // clears the untraced-setup guard for T1
        t.pm_store(T0, 0, 8, false, Category::UserData, 2);
        t.flush(T1, 0, 3); // foreign clwb: snapshot lives in T1
        t.pm_store(T0, 0, 8, false, Category::UserData, 4);
        t.flush(T0, 0, 5);
        t.fence(T0, 6); // point 2: durable, but T1's snapshot is live
        t.fence(T1, 7); // point 3: snapshot drained
        let d = durable_lines_at_fences(t.events(), &[2, 3]);
        assert!(d[0].is_empty());
        assert_eq!(d[1], vec![Line(0)]);
    }

    #[test]
    fn durable_lines_wait_for_every_thread_to_fence() {
        // T1 participates in the trace but has not fenced by point 1:
        // untraced setup may have left its in-flight entries armed, so
        // nothing is provable until its first fence.
        let mut t = TraceBuffer::new();
        t.pm_store(T1, 64, 8, false, Category::UserData, 1);
        t.pm_store(T0, 0, 8, false, Category::UserData, 2);
        t.flush(T0, 0, 3);
        t.fence(T0, 4); // point 1: T1 has never fenced
        t.flush(T1, 64, 5);
        t.fence(T1, 6); // point 2: both threads drained
        let d = durable_lines_at_fences(t.events(), &[1, 2]);
        assert!(d[0].is_empty());
        assert_eq!(d[1], vec![Line(0), Line(1)]);
    }

    #[test]
    fn durable_lines_points_past_trace_are_empty() {
        let mut t = TraceBuffer::new();
        t.pm_store(T0, 0, 8, false, Category::UserData, 1);
        t.flush(T0, 0, 2);
        t.fence(T0, 3);
        let d = durable_lines_at_fences(t.events(), &[1, 9]);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], vec![Line(0)]);
        assert!(d[1].is_empty());
    }
}
