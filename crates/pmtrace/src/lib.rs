//! The WHISPER trace framework.
//!
//! WHISPER instruments every mode of updating PM with `PM_*` macros that
//! "emit a trace of PM updates and fences for offline analysis"
//! (Section 4, Figure 2). This crate is the Rust equivalent: a typed
//! event stream ([`Event`]/[`TraceBuffer`]) recorded by the `memsim`
//! machine as applications execute, and the complete offline analysis of
//! Section 5:
//!
//! * epoch segmentation — stores between two fences form an [`Epoch`]
//! * epoch sizes in unique 64 B lines (Figure 4) and singleton byte
//!   sizes (Consequence 4)
//! * epochs per durable transaction (Figure 3)
//! * self- and cross-thread write-after-write dependencies inside a
//!   50 µs window (Figure 5)
//! * write amplification by write category (Section 5.2)
//! * the non-temporal store fraction (Consequence 10)
//! * epochs per second (Table 1)
//!
//! # Example
//!
//! ```
//! use pmtrace::{Category, TraceBuffer, Tid, analysis};
//!
//! let mut t = TraceBuffer::new();
//! let tid = Tid(0);
//! t.tx_begin(tid, 1, 0);
//! t.pm_store(tid, 0x1000, 8, false, Category::UserData, 10);
//! t.fence(tid, 20);
//! t.tx_end(tid, 1, 30);
//! let epochs = analysis::split_epochs(t.events());
//! assert_eq!(epochs.len(), 1);
//! assert_eq!(epochs[0].unique_lines(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod buffer;
pub mod codec;
mod event;
pub mod transform;

pub use analysis::Epoch;
pub use buffer::TraceBuffer;
pub use codec::{decode_events, encode_events, CodecError};
pub use event::{Category, Event, EventKind, Tid, TxId};
pub use transform::{elide_indices, splice, TraceEdit};
