//! Binary trace serialization.
//!
//! WHISPER's published traces are files ("the size of the trace is
//! limited only by storage capacity", Section 4) that downstream
//! studies re-analyze offline. This module provides a compact,
//! versioned binary codec for [`Event`] streams so traces recorded on
//! one run can be archived and re-analyzed (or replayed through the
//! `hops` timing models) later, without pulling in a serialization
//! framework.
//!
//! Layout: an 8-byte magic+version header, a little-endian `u64` event
//! count, then fixed 24-byte records `{tag u8, tid u24, a u32, b u64,
//! at_ns u64}` whose field meaning depends on the tag.

use crate::event::{Category, Event, EventKind, Tid};

const MAGIC: [u8; 8] = *b"WHISPR01";
const REC: usize = 24;

/// Errors from [`decode_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// The byte stream ended mid-record or disagrees with its count.
    Truncated,
    /// An unknown event tag or category code.
    BadTag {
        /// The offending byte.
        tag: u8,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "not a WHISPER trace (bad header)"),
            CodecError::Truncated => write!(f, "trace truncated"),
            CodecError::BadTag { tag } => write!(f, "unknown event tag {tag:#x}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn cat_code(c: Category) -> u8 {
    Category::ALL
        .iter()
        .position(|x| *x == c)
        .expect("known category") as u8
}

fn cat_from(code: u8) -> Option<Category> {
    Category::ALL.get(code as usize).copied()
}

/// Serialize an event stream.
pub fn encode_events(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * REC);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for ev in events {
        let (tag, a, b): (u8, u32, u64) = match ev.kind {
            EventKind::PmStore { addr, len, nt, cat } => {
                let tag = if nt { 1 } else { 0 };
                // a packs len (24 bits) and category (8 bits).
                (tag, (len << 8) | cat_code(cat) as u32, addr)
            }
            EventKind::Flush { addr } => (2, 0, addr),
            EventKind::Fence => (3, 0, 0),
            EventKind::DFence => (4, 0, 0),
            EventKind::TxBegin { id } => (5, 0, id),
            EventKind::TxEnd { id } => (6, 0, id),
            EventKind::PmLoad { addr } => (7, 0, addr),
            EventKind::RecoveryBegin => (8, 0, 0),
        };
        out.push(tag);
        out.extend_from_slice(&ev.tid.0.to_le_bytes()[..3]);
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&ev.at_ns.to_le_bytes());
    }
    out
}

/// Deserialize an event stream produced by [`encode_events`].
///
/// # Errors
///
/// [`CodecError`] on malformed input.
pub fn decode_events(bytes: &[u8]) -> Result<Vec<Event>, CodecError> {
    if bytes.len() < 16 || bytes[0..8] != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let body = &bytes[16..];
    if body.len() != count * REC {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for rec in body.chunks_exact(REC) {
        let tag = rec[0];
        let tid = Tid(u32::from_le_bytes([rec[1], rec[2], rec[3], 0]));
        let a = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let b = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
        let at_ns = u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"));
        let kind = match tag {
            0 | 1 => EventKind::PmStore {
                addr: b,
                len: a >> 8,
                nt: tag == 1,
                cat: cat_from((a & 0xff) as u8).ok_or(CodecError::BadTag {
                    tag: (a & 0xff) as u8,
                })?,
            },
            2 => EventKind::Flush { addr: b },
            3 => EventKind::Fence,
            4 => EventKind::DFence,
            5 => EventKind::TxBegin { id: b },
            6 => EventKind::TxEnd { id: b },
            7 => EventKind::PmLoad { addr: b },
            8 => EventKind::RecoveryBegin,
            other => return Err(CodecError::BadTag { tag: other }),
        };
        out.push(Event { tid, at_ns, kind });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn sample() -> Vec<Event> {
        let mut t = TraceBuffer::new();
        t.tx_begin(Tid(0), 9, 1);
        t.pm_store(Tid(0), 0x1_0000_0040, 24, false, Category::UserData, 2);
        t.pm_store(Tid(3), 0x1_0000_0080, 512, true, Category::RedoLog, 3);
        t.flush(Tid(0), 0x1_0000_0040, 4);
        t.fence(Tid(0), 5);
        t.dfence(Tid(3), 6);
        t.tx_end(Tid(0), 9, 7);
        t.recovery_begin(Tid(0), 8);
        t.pm_load(Tid(0), 0x1_0000_0040, 9);
        t.into_events()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let events = sample();
        let bytes = encode_events(&events);
        let back = decode_events(&bytes).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_events(&[]);
        assert_eq!(decode_events(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(decode_events(b"nonsense"), Err(CodecError::BadHeader));
        assert_eq!(
            decode_events(b"WHISPR99\0\0\0\0\0\0\0\0"),
            Err(CodecError::BadHeader)
        );
    }

    #[test]
    fn truncation_detected() {
        let mut bytes = encode_events(&sample());
        bytes.pop();
        assert_eq!(decode_events(&bytes), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tag_detected() {
        let mut bytes = encode_events(&sample());
        bytes[16] = 0x7f; // first record's tag
        assert!(matches!(
            decode_events(&bytes),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn analysis_identical_after_round_trip() {
        let events = sample();
        let back = decode_events(&encode_events(&events)).unwrap();
        let a = crate::analysis::split_epochs(&events);
        let b = crate::analysis::split_epochs(&back);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lines, y.lines);
            assert_eq!(x.bytes, y.bytes);
        }
    }
}
