//! Owned trace transforms: elide events by index, splice ranges.
//!
//! The checker ([`pmcheck`]'s rewrite pass) and any future trace
//! editor need to produce a *new* event stream from a recorded one
//! without disturbing the relative order or timestamps of the events
//! that survive — the hops `Replayer` prices inter-event gaps from the
//! recorded `at_ns` values, and the crash `CrashCounter` counts
//! surviving fences, so both stay aligned as long as survivors keep
//! their original order and stamps. Everything here returns owned
//! `Vec<Event>`s; [`Event`] is `Copy`, so no per-event allocation
//! happens either way.

use crate::event::Event;

/// An accumulated set of events to drop from a trace, applied in one
/// pass. Indices refer to the *original* trace; duplicates and
/// out-of-order insertion are fine.
#[derive(Debug, Clone, Default)]
pub struct TraceEdit {
    elide: Vec<usize>,
}

impl TraceEdit {
    /// An edit that drops nothing.
    pub fn new() -> TraceEdit {
        TraceEdit::default()
    }

    /// Mark the event at `idx` (original-trace index) for elision.
    pub fn elide(&mut self, idx: usize) -> &mut TraceEdit {
        self.elide.push(idx);
        self
    }

    /// True when no elisions are queued.
    pub fn is_empty(&self) -> bool {
        self.elide.is_empty()
    }

    /// Number of distinct queued elisions.
    pub fn len(&self) -> usize {
        let mut v = self.elide.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Apply the edit: returns the surviving events (original order and
    /// timestamps preserved) plus, for each survivor, its index in the
    /// original trace — the map a caller needs to chain edits across
    /// passes. Indices past the end of `events` are ignored.
    pub fn apply(&self, events: &[Event]) -> (Vec<Event>, Vec<usize>) {
        let mut drop = self.elide.clone();
        drop.sort_unstable();
        drop.dedup();
        let mut kept = Vec::with_capacity(events.len().saturating_sub(drop.len()));
        let mut origin = Vec::with_capacity(kept.capacity());
        let mut next_drop = drop.iter().copied().peekable();
        for (i, ev) in events.iter().enumerate() {
            if next_drop.peek() == Some(&i) {
                next_drop.next();
                continue;
            }
            kept.push(*ev);
            origin.push(i);
        }
        (kept, origin)
    }
}

/// Drop the events at `indices` (any order, duplicates fine) and
/// return the surviving trace. See [`TraceEdit::apply`] for the
/// ordering guarantees.
pub fn elide_indices(events: &[Event], indices: &[usize]) -> Vec<Event> {
    let mut edit = TraceEdit::new();
    for &i in indices {
        edit.elide(i);
    }
    edit.apply(events).0
}

/// Replace `events[range]` with `replacement`, keeping everything
/// around the range untouched. Panics (like slice indexing) if the
/// range is out of bounds or decreasing.
pub fn splice(
    events: &[Event],
    range: std::ops::Range<usize>,
    replacement: &[Event],
) -> Vec<Event> {
    let mut out = Vec::with_capacity(events.len() - range.len() + replacement.len());
    out.extend_from_slice(&events[..range.start]);
    out.extend_from_slice(replacement);
    out.extend_from_slice(&events[range.end..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Tid, TraceBuffer};

    fn sample() -> Vec<Event> {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 8, false, Category::UserData, 10);
        t.flush(tid, 0, 20);
        t.fence(tid, 30);
        t.flush(tid, 0, 40);
        t.fence(tid, 50);
        t.into_events()
    }

    #[test]
    fn elide_preserves_order_and_stamps() {
        let evs = sample();
        let out = elide_indices(&evs, &[3]);
        assert_eq!(out.len(), 4);
        let stamps: Vec<u64> = out.iter().map(|e| e.at_ns).collect();
        assert_eq!(stamps, vec![10, 20, 30, 50]);
    }

    #[test]
    fn elide_tolerates_duplicates_and_out_of_range() {
        let evs = sample();
        let out = elide_indices(&evs, &[4, 3, 3, 99]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn apply_reports_origin_indices() {
        let evs = sample();
        let mut edit = TraceEdit::new();
        edit.elide(1).elide(3);
        let (kept, origin) = edit.apply(&evs);
        assert_eq!(kept.len(), 3);
        assert_eq!(origin, vec![0, 2, 4]);
        assert_eq!(edit.len(), 2);
    }

    #[test]
    fn empty_edit_is_identity() {
        let evs = sample();
        let (kept, origin) = TraceEdit::new().apply(&evs);
        assert_eq!(kept, evs);
        assert_eq!(origin, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn splice_replaces_a_range() {
        let evs = sample();
        let out = splice(&evs, 1..3, &evs[3..4]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[1].at_ns, 40);
        assert_eq!(out[2].at_ns, 40);
    }
}
