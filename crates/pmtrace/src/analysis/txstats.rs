//! Epochs per durable transaction (Figure 3).

use super::Epoch;
use crate::event::{Tid, TxId};
use std::collections::HashMap;

/// Distribution of transaction sizes, where "the size of a transaction
/// is the number of epochs or ordering points in the transaction"
/// (Figure 3 caption).
#[derive(Debug, Clone, Default)]
pub struct TxStats {
    /// Epoch count for every observed transaction.
    pub epochs_per_tx: Vec<u64>,
}

impl TxStats {
    /// Number of transactions observed.
    pub fn tx_count(&self) -> usize {
        self.epochs_per_tx.len()
    }

    /// Median transaction size (the statistic Figure 3 plots).
    /// `None` when no transactions were observed.
    pub fn median(&self) -> Option<u64> {
        if self.epochs_per_tx.is_empty() {
            return None;
        }
        let mut v = self.epochs_per_tx.clone();
        v.sort_unstable();
        Some(v[v.len() / 2])
    }

    /// Largest transaction observed.
    pub fn max(&self) -> Option<u64> {
        self.epochs_per_tx.iter().copied().max()
    }

    /// Mean transaction size.
    pub fn mean(&self) -> Option<f64> {
        if self.epochs_per_tx.is_empty() {
            return None;
        }
        let sum: u64 = self.epochs_per_tx.iter().sum();
        Some(sum as f64 / self.epochs_per_tx.len() as f64)
    }
}

/// Streaming accumulator behind [`tx_stats`]: feed epochs one at a
/// time, then [`finish`](TxStatsBuilder::finish).
#[derive(Debug, Default)]
pub struct TxStatsBuilder {
    per_tx: HashMap<(Tid, TxId), u64>,
}

impl TxStatsBuilder {
    /// Account one epoch. Epochs outside any transaction are ignored,
    /// as in the paper's transaction-size figure.
    pub fn push(&mut self, e: &Epoch) {
        if let Some(tx) = e.tx {
            *self.per_tx.entry((e.tid, tx)).or_insert(0) += 1;
        }
    }

    /// Produce the distribution, ordered by (thread, transaction id) so
    /// the result is independent of hash-map iteration order.
    pub fn finish(self) -> TxStats {
        let mut keys: Vec<_> = self.per_tx.into_iter().collect();
        keys.sort_unstable_by_key(|((tid, tx), _)| (*tid, *tx));
        TxStats {
            epochs_per_tx: keys.into_iter().map(|(_, n)| n).collect(),
        }
    }
}

/// Count epochs per transaction from a set of epochs. Epochs outside any
/// transaction are ignored, as in the paper's transaction-size figure.
pub fn tx_stats<'a>(epochs: impl IntoIterator<Item = &'a Epoch>) -> TxStats {
    let mut b = TxStatsBuilder::default();
    for e in epochs {
        b.push(e);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::split_epochs;
    use crate::{Category, TraceBuffer};

    #[test]
    fn counts_epochs_inside_tx() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.tx_begin(tid, 1, 0);
        for i in 0..3u64 {
            t.pm_store(tid, i * 64, 8, false, Category::UserData, 1 + i * 2);
            t.fence(tid, 2 + i * 2);
        }
        t.tx_end(tid, 1, 10);
        // An epoch outside any transaction:
        t.pm_store(tid, 640, 8, false, Category::UserData, 11);
        t.fence(tid, 12);
        let stats = tx_stats(&split_epochs(t.events()));
        assert_eq!(stats.tx_count(), 1);
        assert_eq!(stats.epochs_per_tx, vec![3]);
        assert_eq!(stats.median(), Some(3));
        assert_eq!(stats.max(), Some(3));
    }

    #[test]
    fn median_of_even_and_odd() {
        let s = TxStats {
            epochs_per_tx: vec![1, 5, 3],
        };
        assert_eq!(s.median(), Some(3));
        let s = TxStats {
            epochs_per_tx: vec![1, 2, 3, 10],
        };
        assert_eq!(s.median(), Some(3)); // upper median
    }

    #[test]
    fn empty_stats() {
        let s = TxStats::default();
        assert_eq!(s.median(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn separate_threads_separate_tx() {
        let mut t = TraceBuffer::new();
        for tid in [Tid(0), Tid(1)] {
            t.tx_begin(tid, 7, 0);
            t.pm_store(
                tid,
                64 * (tid.0 as u64 + 1) * 100,
                8,
                false,
                Category::UserData,
                1,
            );
            t.fence(tid, 2);
            t.tx_end(tid, 7, 3);
        }
        let stats = tx_stats(&split_epochs(t.events()));
        assert_eq!(stats.tx_count(), 2);
        assert_eq!(stats.mean(), Some(1.0));
    }
}
