//! Single-pass streaming trace analysis.
//!
//! The suite driver needs every Section-5 statistic for every trace.
//! Computing them with the per-metric functions walks the epoch vector
//! seven times (transaction sizes, size histogram, dependencies,
//! amplification, NT fraction, small-singleton fraction, epoch count);
//! [`Analyzer`] folds all of them in **one** traversal, and
//! [`Analyzer::analyze_events`] goes one step further by consuming
//! epochs as [`for_each_epoch`](super::for_each_epoch) closes them, so
//! the epoch vector is never materialized at all.
//!
//! The per-metric functions remain as thin wrappers over the same
//! accumulators, so results are identical by construction.

use super::{
    AmplificationReport, DepStats, DepTracker, Epoch, EpochSizeHistogram, TxStats, TxStatsBuilder,
};
use crate::event::Event;

/// Everything the single pass produces — one field per legacy
/// per-metric function, plus the epoch count.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Total epochs in the trace.
    pub epoch_count: usize,
    /// Figure 3: epochs per durable transaction.
    pub tx_stats: TxStats,
    /// Figure 4: epoch-size histogram.
    pub size_hist: EpochSizeHistogram,
    /// Figure 5: self/cross dependency counts.
    pub deps: DepStats,
    /// Section 5.2: write amplification by category.
    pub amplification: AmplificationReport,
    /// Consequence 10: NT-store fraction of PM bytes (`None` if no
    /// bytes were written).
    pub nt_fraction: Option<f64>,
    /// Section 5.1: fraction of singletons under 10 bytes (`None` if
    /// there are no singletons).
    pub small_singleton_fraction: Option<f64>,
}

/// Streaming fold of all Section-5 statistics.
///
/// Feed epochs in global execution order (the order
/// [`split_epochs`](super::split_epochs) emits) — the dependency
/// tracker is order-sensitive. Then call [`finish`](Analyzer::finish).
#[derive(Debug, Default)]
pub struct Analyzer {
    epoch_count: usize,
    tx: TxStatsBuilder,
    size_hist: EpochSizeHistogram,
    deps: DepTracker,
    amplification: AmplificationReport,
    total_bytes: u64,
    nt_bytes: u64,
    singletons: u64,
    small_singletons: u64,
}

impl Analyzer {
    /// A fresh accumulator.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Fold one epoch into every statistic.
    pub fn push(&mut self, e: &Epoch) {
        self.epoch_count += 1;
        self.tx.push(e);
        self.size_hist.push(e);
        self.deps.push(e);
        self.amplification.push(e);
        self.total_bytes += e.bytes;
        self.nt_bytes += e.nt_bytes;
        if e.is_singleton() {
            self.singletons += 1;
            if e.bytes < 10 {
                self.small_singletons += 1;
            }
        }
    }

    /// Finalize the report.
    pub fn finish(self) -> TraceReport {
        TraceReport {
            epoch_count: self.epoch_count,
            tx_stats: self.tx.finish(),
            size_hist: self.size_hist,
            deps: self.deps.stats(),
            amplification: self.amplification,
            nt_fraction: if self.total_bytes == 0 {
                None
            } else {
                Some(self.nt_bytes as f64 / self.total_bytes as f64)
            },
            small_singleton_fraction: if self.singletons == 0 {
                None
            } else {
                Some(self.small_singletons as f64 / self.singletons as f64)
            },
        }
    }

    /// Analyze already-split epochs in one pass.
    pub fn analyze_epochs<'a>(epochs: impl IntoIterator<Item = &'a Epoch>) -> TraceReport {
        let mut a = Analyzer::new();
        for e in epochs {
            a.push(e);
        }
        a.finish()
    }

    /// Analyze a raw event stream in one pass, splitting epochs and
    /// folding statistics in the same traversal — each epoch is
    /// dropped as soon as it has been accounted, so peak memory is one
    /// open epoch per thread instead of the whole epoch vector.
    pub fn analyze_events(events: &[Event]) -> TraceReport {
        let _span = pmobs::span!("analyze");
        let mut a = Analyzer::new();
        super::for_each_epoch(events, |e| a.push(&e));
        pmobs::count!("pmtrace.events_analyzed", events.len() as u64);
        pmobs::count!("pmtrace.epochs_analyzed", a.epoch_count as u64);
        a.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{
        amplification, dependencies, epoch_size_histogram, nt_fraction, small_singleton_fraction,
        split_epochs, tx_stats,
    };
    use crate::{Category, Tid, TraceBuffer};

    /// A trace exercising every statistic: transactions, NT stores,
    /// multiple threads, singletons, multi-line epochs, dependencies.
    fn busy_trace() -> Vec<Event> {
        let mut t = TraceBuffer::new();
        for i in 0..40u64 {
            let tid = Tid((i % 3) as u32);
            if i % 5 == 0 {
                t.tx_begin(tid, i, i * 100);
            }
            let addr = (i % 7) * 64;
            t.pm_store(
                tid,
                addr,
                4 + (i % 12) as u32,
                i % 4 == 0,
                Category::UserData,
                i * 100 + 10,
            );
            if i % 3 == 0 {
                t.pm_store(tid, addr + 640, 200, false, Category::UndoLog, i * 100 + 20);
            }
            if i % 2 == 0 {
                t.fence(tid, i * 100 + 30);
            } else {
                t.dfence(tid, i * 100 + 30);
            }
            if i % 5 == 4 {
                t.tx_end(tid, i - 4, i * 100 + 40);
            }
        }
        t.into_events()
    }

    #[test]
    fn single_pass_matches_legacy_functions() {
        let events = busy_trace();
        let epochs = split_epochs(&events);
        let report = Analyzer::analyze_events(&events);

        assert_eq!(report.epoch_count, epochs.len());
        assert_eq!(
            report.tx_stats.epochs_per_tx,
            tx_stats(&epochs).epochs_per_tx
        );
        assert_eq!(report.size_hist, epoch_size_histogram(&epochs));
        assert_eq!(report.deps, dependencies(&epochs));
        assert_eq!(report.amplification, amplification(&epochs));
        assert_eq!(report.nt_fraction, nt_fraction(&epochs));
        assert_eq!(
            report.small_singleton_fraction,
            small_singleton_fraction(&epochs)
        );
    }

    #[test]
    fn analyze_epochs_equals_analyze_events() {
        let events = busy_trace();
        let epochs = split_epochs(&events);
        let from_epochs = Analyzer::analyze_epochs(&epochs);
        let from_events = Analyzer::analyze_events(&events);
        assert_eq!(from_epochs.epoch_count, from_events.epoch_count);
        assert_eq!(from_epochs.deps, from_events.deps);
        assert_eq!(from_epochs.size_hist, from_events.size_hist);
        assert_eq!(
            from_epochs.tx_stats.epochs_per_tx,
            from_events.tx_stats.epochs_per_tx
        );
    }

    #[test]
    fn empty_trace_report() {
        let report = Analyzer::analyze_events(&[]);
        assert_eq!(report.epoch_count, 0);
        assert_eq!(report.nt_fraction, None);
        assert_eq!(report.small_singleton_fraction, None);
        assert_eq!(report.tx_stats.tx_count(), 0);
        assert_eq!(report.deps, DepStats::default());
    }
}
