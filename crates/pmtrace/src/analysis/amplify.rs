//! Write amplification by category (Section 5.2).
//!
//! "We define write amplification as the number of additional bytes
//! written to PM for every byte of user data stored in PM during a
//! transaction. The additional bytes are incurred by recovery mechanisms
//! such as undo and redo logs and the memory allocator."

use super::Epoch;
use crate::event::Category;

/// Byte totals per write category, plus the derived amplification
/// factor.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AmplificationReport {
    /// Bytes per category, indexed as [`Category::ALL`].
    pub bytes_by_cat: [u64; Category::ALL.len()],
}

impl AmplificationReport {
    /// Account one epoch (the streaming form of [`amplification`]).
    pub fn push(&mut self, e: &Epoch) {
        for (slot, add) in self.bytes_by_cat.iter_mut().zip(e.bytes_by_cat) {
            *slot += add;
        }
    }

    /// Bytes recorded for one category.
    pub fn bytes(&self, cat: Category) -> u64 {
        let idx = Category::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("known category");
        self.bytes_by_cat[idx]
    }

    /// Total PM bytes written.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_cat.iter().sum()
    }

    /// Bytes of user data.
    pub fn user_bytes(&self) -> u64 {
        self.bytes(Category::UserData)
    }

    /// Overhead bytes (everything that is not user data).
    pub fn overhead_bytes(&self) -> u64 {
        self.total_bytes() - self.user_bytes()
    }

    /// Additional bytes per user byte — the paper's write amplification.
    /// PMFS ≈ 0.1 ("for every 4096 bytes ... roughly 400 additional
    /// bytes"), Mnemosyne 3–6, NVML ≈ 10, N-store 2–14.
    ///
    /// Returns `None` when no user data was written (amplification is
    /// undefined).
    pub fn amplification(&self) -> Option<f64> {
        let user = self.user_bytes();
        if user == 0 {
            None
        } else {
            Some(self.overhead_bytes() as f64 / user as f64)
        }
    }
}

impl std::fmt::Display for AmplificationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for cat in Category::ALL {
            let b = self.bytes(cat);
            if b > 0 {
                write!(f, "{cat}:{b}B ")?;
            }
        }
        match self.amplification() {
            Some(a) => write!(f, "amplification:{:.0}%", a * 100.0),
            None => write!(f, "amplification:n/a"),
        }
    }
}

/// Sum category bytes across epochs.
pub fn amplification<'a>(epochs: impl IntoIterator<Item = &'a Epoch>) -> AmplificationReport {
    let mut r = AmplificationReport::default();
    for e in epochs {
        r.push(e);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::split_epochs;
    use crate::{Tid, TraceBuffer};

    #[test]
    fn pmfs_like_ten_percent() {
        // 4096 B of user data + ~400 B of metadata/journal.
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 4096, 4096, true, Category::UserData, 1);
        t.fence(tid, 2);
        t.pm_store(tid, 0, 400, false, Category::FsMeta, 3);
        t.fence(tid, 4);
        let r = amplification(&split_epochs(t.events()));
        let a = r.amplification().unwrap();
        assert!((a - 400.0 / 4096.0).abs() < 1e-9);
    }

    #[test]
    fn nvml_like_1000_percent() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 10, false, Category::UserData, 1);
        t.pm_store(tid, 64, 60, false, Category::UndoLog, 2);
        t.pm_store(tid, 128, 40, false, Category::AllocMeta, 3);
        t.fence(tid, 4);
        let r = amplification(&split_epochs(t.events()));
        assert_eq!(r.user_bytes(), 10);
        assert_eq!(r.overhead_bytes(), 100);
        assert!((r.amplification().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn no_user_data_is_undefined() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::LogMeta, 1);
        t.fence(Tid(0), 2);
        let r = amplification(&split_epochs(t.events()));
        assert_eq!(r.amplification(), None);
        assert_eq!(r.total_bytes(), 8);
    }

    #[test]
    fn display_nonempty() {
        let r = AmplificationReport::default();
        assert!(!format!("{r}").is_empty());
    }
}
