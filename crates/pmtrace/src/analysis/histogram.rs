//! Epoch-size distribution (Figure 4).

use super::Epoch;

/// Labels for the paper's Figure 4 buckets.
pub const SIZE_BUCKET_LABELS: [&str; 7] = ["1", "2", "3", "4", "5", "6-63", ">=64"];

/// Histogram of epoch sizes in unique 64 B cache lines, bucketed exactly
/// as Figure 4: 1, 2, 3, 4, 5, 6–63, ≥64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochSizeHistogram {
    /// Epoch counts per bucket, in [`SIZE_BUCKET_LABELS`] order.
    pub buckets: [u64; 7],
}

impl EpochSizeHistogram {
    /// Bucket index for an epoch of `lines` unique lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`; an epoch by definition stores something.
    pub fn bucket_for(lines: usize) -> usize {
        match lines {
            0 => panic!("an epoch has at least one line"),
            1 => 0,
            2 => 1,
            3 => 2,
            4 => 3,
            5 => 4,
            6..=63 => 5,
            _ => 6,
        }
    }

    /// Total epochs counted.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of epochs in bucket `i` (0.0 if the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / total as f64
        }
    }

    /// Fraction of singleton epochs — the paper's headline "75% of
    /// epochs update exactly one 64B cache line".
    pub fn singleton_fraction(&self) -> f64 {
        self.fraction(0)
    }

    /// Account one epoch (the streaming form of
    /// [`epoch_size_histogram`]).
    pub fn push(&mut self, e: &Epoch) {
        self.buckets[EpochSizeHistogram::bucket_for(e.unique_lines())] += 1;
    }

    /// All bucket fractions, in label order.
    pub fn fractions(&self) -> [f64; 7] {
        let mut out = [0.0; 7];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.fraction(i);
        }
        out
    }
}

impl std::fmt::Display for EpochSizeHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (label, frac) in SIZE_BUCKET_LABELS.iter().zip(self.fractions()) {
            write!(f, "{label}:{:.1}% ", frac * 100.0)?;
        }
        Ok(())
    }
}

/// Build the Figure 4 histogram from a set of epochs.
pub fn epoch_size_histogram<'a>(epochs: impl IntoIterator<Item = &'a Epoch>) -> EpochSizeHistogram {
    let mut h = EpochSizeHistogram::default();
    for e in epochs {
        h.push(e);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::split_epochs;
    use crate::{Category, Tid, TraceBuffer};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(EpochSizeHistogram::bucket_for(1), 0);
        assert_eq!(EpochSizeHistogram::bucket_for(5), 4);
        assert_eq!(EpochSizeHistogram::bucket_for(6), 5);
        assert_eq!(EpochSizeHistogram::bucket_for(63), 5);
        assert_eq!(EpochSizeHistogram::bucket_for(64), 6);
        assert_eq!(EpochSizeHistogram::bucket_for(1000), 6);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        EpochSizeHistogram::bucket_for(0);
    }

    #[test]
    fn histogram_from_trace() {
        let mut t = TraceBuffer::new();
        // singleton
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 1);
        t.fence(Tid(0), 2);
        // 64-line epoch: a PMFS-style 4 KB block write
        t.pm_store(Tid(0), 4096, 4096, true, Category::UserData, 3);
        t.fence(Tid(0), 4);
        let h = epoch_size_histogram(&split_epochs(t.events()));
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[6], 1);
        assert_eq!(h.total(), 2);
        assert!((h.singleton_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fractions_sum_to_one_when_nonempty() {
        let h = EpochSizeHistogram {
            buckets: [3, 1, 0, 0, 0, 2, 4],
        };
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_fractions_zero() {
        let h = EpochSizeHistogram::default();
        assert_eq!(h.singleton_fraction(), 0.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", EpochSizeHistogram::default()).is_empty());
    }
}
