//! Self- and cross-thread epoch dependencies (Figure 5).
//!
//! Section 5.1 defines, for epochs that write a common cache line `c`:
//! a *cross-dependency* when the two epochs come from different threads
//! and a *self-dependency* when a later epoch of the same thread writes
//! a line an earlier epoch wrote. "To simplify trace processing, we only
//! look for dependencies within a 50 µsec window, which is the upper
//! limit for which a flushed cache line could be buffered before
//! becoming persistent."

use super::Epoch;
use crate::event::Tid;
use pmem::Line;
use std::collections::HashMap;

/// The paper's dependency window: 50 µs, in nanoseconds.
pub const DEP_WINDOW_NS: u64 = 50_000;

/// Counts of dependent epochs, as fractions of all epochs (Figure 5's
/// y-axis is "epoch dependencies as a percentage of total epochs").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Total epochs analyzed.
    pub total_epochs: u64,
    /// Epochs with at least one write-after-write dependency on an
    /// earlier epoch of the *same* thread within the window.
    pub self_dep_epochs: u64,
    /// Epochs with at least one write-after-write dependency on an
    /// earlier epoch of a *different* thread within the window.
    pub cross_dep_epochs: u64,
}

impl DepStats {
    /// Self-dependent fraction of all epochs.
    pub fn self_fraction(&self) -> f64 {
        if self.total_epochs == 0 {
            0.0
        } else {
            self.self_dep_epochs as f64 / self.total_epochs as f64
        }
    }

    /// Cross-dependent fraction of all epochs.
    pub fn cross_fraction(&self) -> f64 {
        if self.total_epochs == 0 {
            0.0
        } else {
            self.cross_dep_epochs as f64 / self.total_epochs as f64
        }
    }
}

/// Streaming accumulator behind [`dependencies`]: feed epochs in
/// global execution order, then read [`stats`](DepTracker::stats).
#[derive(Debug, Default)]
pub struct DepTracker {
    // line -> (thread of last writer epoch, its end time)
    last_writer: HashMap<Line, (Tid, u64)>,
    stats: DepStats,
}

impl DepTracker {
    /// Account one epoch. An epoch depends on the most recent earlier
    /// epoch that wrote any of its lines, if that epoch ended within
    /// [`DEP_WINDOW_NS`] of this epoch's start.
    pub fn push(&mut self, e: &Epoch) {
        self.stats.total_epochs += 1;
        let mut self_dep = false;
        let mut cross_dep = false;
        for line in &e.lines {
            if let Some(&(wtid, wend)) = self.last_writer.get(line) {
                let within = e.start_ns.saturating_sub(wend) <= DEP_WINDOW_NS;
                if within {
                    if wtid == e.tid {
                        self_dep = true;
                    } else {
                        cross_dep = true;
                    }
                }
            }
        }
        if self_dep {
            self.stats.self_dep_epochs += 1;
        }
        if cross_dep {
            self.stats.cross_dep_epochs += 1;
        }
        for line in &e.lines {
            self.last_writer.insert(*line, (e.tid, e.end_ns));
        }
    }

    /// The counts accumulated so far.
    pub fn stats(&self) -> DepStats {
        self.stats
    }
}

/// Find WAW dependencies between epochs.
///
/// `epochs` must be in global execution order (as produced by
/// [`super::split_epochs`] from a time-ordered trace).
pub fn dependencies(epochs: &[Epoch]) -> DepStats {
    let mut t = DepTracker::default();
    for e in epochs {
        t.push(e);
    }
    t.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::split_epochs;
    use crate::{Category, TraceBuffer};

    #[test]
    fn self_dependency_detected() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 8, false, Category::UserData, 1);
        t.fence(tid, 2);
        t.pm_store(tid, 0, 8, false, Category::UserData, 3); // same line, same thread
        t.fence(tid, 4);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.total_epochs, 2);
        assert_eq!(s.self_dep_epochs, 1);
        assert_eq!(s.cross_dep_epochs, 0);
        assert_eq!(s.self_fraction(), 0.5);
    }

    #[test]
    fn cross_dependency_detected() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 1);
        t.fence(Tid(0), 2);
        t.pm_store(Tid(1), 0, 8, false, Category::UserData, 3);
        t.fence(Tid(1), 4);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.cross_dep_epochs, 1);
        assert_eq!(s.self_dep_epochs, 0);
    }

    #[test]
    fn dependency_outside_window_ignored() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 8, false, Category::UserData, 1);
        t.fence(tid, 2);
        // More than 50 µs later:
        t.pm_store(tid, 0, 8, false, Category::UserData, 2 + DEP_WINDOW_NS + 1);
        t.fence(tid, 2 + DEP_WINDOW_NS + 2);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.self_dep_epochs, 0);
    }

    #[test]
    fn boundary_exactly_at_window_counts() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 8, false, Category::UserData, 1);
        t.fence(tid, 2);
        t.pm_store(tid, 0, 8, false, Category::UserData, 2 + DEP_WINDOW_NS);
        t.fence(tid, 3 + DEP_WINDOW_NS);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.self_dep_epochs, 1);
    }

    #[test]
    fn disjoint_lines_no_dependency() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 8, false, Category::UserData, 1);
        t.fence(tid, 2);
        t.pm_store(tid, 64, 8, false, Category::UserData, 3);
        t.fence(tid, 4);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.self_dep_epochs, 0);
        assert_eq!(s.cross_dep_epochs, 0);
    }

    #[test]
    fn epoch_counted_once_despite_many_shared_lines() {
        let mut t = TraceBuffer::new();
        let tid = Tid(0);
        t.pm_store(tid, 0, 128, false, Category::UserData, 1); // 2 lines
        t.fence(tid, 2);
        t.pm_store(tid, 0, 128, false, Category::UserData, 3); // same 2 lines
        t.fence(tid, 4);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.self_dep_epochs, 1);
    }

    #[test]
    fn both_self_and_cross_possible_for_one_epoch() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 1);
        t.fence(Tid(0), 2);
        t.pm_store(Tid(1), 64, 8, false, Category::UserData, 3);
        t.fence(Tid(1), 4);
        // Thread 0 epoch touching both lines: self-dep on line 0,
        // cross-dep on line 1.
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 5);
        t.pm_store(Tid(0), 64, 8, false, Category::UserData, 6);
        t.fence(Tid(0), 7);
        let s = dependencies(&split_epochs(t.events()));
        assert_eq!(s.self_dep_epochs, 1);
        assert_eq!(s.cross_dep_epochs, 1);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let s = dependencies(&[]);
        assert_eq!(s.self_fraction(), 0.0);
        assert_eq!(s.cross_fraction(), 0.0);
    }
}
