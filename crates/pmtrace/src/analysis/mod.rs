//! Offline analysis of a recorded trace (paper Section 5).
//!
//! "We consider an epoch to consist of stores, whether cacheable or
//! non-temporal, to PM between two sfence instructions. For this
//! analysis, we ignore cache flush operations." — Section 5.1.

mod amplify;
mod analyzer;
mod deps;
mod histogram;
mod txstats;

pub use amplify::{amplification, AmplificationReport};
pub use analyzer::{Analyzer, TraceReport};
pub use deps::{dependencies, DepStats, DepTracker, DEP_WINDOW_NS};
pub use histogram::{epoch_size_histogram, EpochSizeHistogram, SIZE_BUCKET_LABELS};
pub use txstats::{tx_stats, TxStats, TxStatsBuilder};

use crate::event::{Category, Event, EventKind, Tid, TxId};
use pmem::{lines_spanning, Line};
use std::collections::{BTreeSet, HashMap};

/// A set of PM stores on one thread between two ordering points.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Thread that issued the epoch.
    pub tid: Tid,
    /// Per-thread epoch sequence number (0-based).
    pub index: u64,
    /// Timestamp of the epoch's first store.
    pub start_ns: u64,
    /// Timestamp of the fence that closed the epoch.
    pub end_ns: u64,
    /// Unique 64 B cache lines stored to.
    pub lines: BTreeSet<Line>,
    /// Total bytes stored (not deduplicated).
    pub bytes: u64,
    /// Bytes written with non-temporal stores.
    pub nt_bytes: u64,
    /// Number of store operations.
    pub stores: u32,
    /// Number of non-temporal store operations.
    pub nt_stores: u32,
    /// Bytes per [`Category`], indexed as in [`Category::ALL`].
    pub bytes_by_cat: [u64; Category::ALL.len()],
    /// Durable transaction active when the epoch began, if any.
    pub tx: Option<TxId>,
    /// True if the closing fence was a durability fence.
    pub durable: bool,
}

impl Epoch {
    /// Size of the epoch in unique cache lines (the paper's "epoch size").
    pub fn unique_lines(&self) -> usize {
        self.lines.len()
    }

    /// A singleton epoch updates exactly one 64 B line.
    pub fn is_singleton(&self) -> bool {
        self.lines.len() == 1
    }

    /// Bytes recorded for one category.
    pub fn cat_bytes(&self, cat: Category) -> u64 {
        let idx = Category::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("known category");
        self.bytes_by_cat[idx]
    }
}

#[derive(Debug, Default)]
struct OpenEpoch {
    start_ns: u64,
    lines: BTreeSet<Line>,
    bytes: u64,
    nt_bytes: u64,
    stores: u32,
    nt_stores: u32,
    bytes_by_cat: [u64; Category::ALL.len()],
    tx: Option<TxId>,
}

/// Walk a globally-ordered event stream and hand each closed epoch to
/// `sink`, in fence-close (global execution) order — the order
/// [`dependencies`] requires.
///
/// Fences that close an empty epoch (no stores since the previous
/// fence) produce nothing, matching the paper's store-centric epoch
/// definition. A trailing run of stores with no closing fence is
/// likewise dropped — it never became an ordering unit.
///
/// This is the single traversal both [`split_epochs`] (which collects)
/// and [`Analyzer::analyze_events`] (which folds statistics without
/// materializing the epoch vector) are built on.
pub fn for_each_epoch(events: &[Event], mut sink: impl FnMut(Epoch)) {
    let mut open: HashMap<Tid, OpenEpoch> = HashMap::new();
    let mut counters: HashMap<Tid, u64> = HashMap::new();
    let mut active_tx: HashMap<Tid, TxId> = HashMap::new();

    for ev in events {
        match ev.kind {
            EventKind::PmStore { addr, len, nt, cat } => {
                let e = open.entry(ev.tid).or_default();
                if e.stores == 0 {
                    // First store of the epoch fixes its start time and
                    // transaction attribution.
                    e.start_ns = ev.at_ns;
                    e.tx = active_tx.get(&ev.tid).copied();
                }
                for (line, _, _) in lines_spanning(addr, len as usize) {
                    e.lines.insert(line);
                }
                e.bytes += len as u64;
                e.stores += 1;
                if nt {
                    e.nt_bytes += len as u64;
                    e.nt_stores += 1;
                }
                let idx = Category::ALL
                    .iter()
                    .position(|c| *c == cat)
                    .expect("known category");
                e.bytes_by_cat[idx] += len as u64;
            }
            EventKind::Fence | EventKind::DFence => {
                if let Some(e) = open.remove(&ev.tid) {
                    if e.stores > 0 {
                        let index = counters.entry(ev.tid).or_insert(0);
                        sink(Epoch {
                            tid: ev.tid,
                            index: *index,
                            start_ns: e.start_ns,
                            end_ns: ev.at_ns,
                            lines: e.lines,
                            bytes: e.bytes,
                            nt_bytes: e.nt_bytes,
                            stores: e.stores,
                            nt_stores: e.nt_stores,
                            bytes_by_cat: e.bytes_by_cat,
                            tx: e.tx,
                            durable: ev.kind == EventKind::DFence,
                        });
                        *index += 1;
                    }
                }
            }
            EventKind::TxBegin { id } => {
                active_tx.insert(ev.tid, id);
            }
            EventKind::TxEnd { .. } => {
                active_tx.remove(&ev.tid);
            }
            EventKind::Flush { .. } => {
                // Ignored, per Section 5.1.
            }
            EventKind::PmLoad { .. } | EventKind::RecoveryBegin => {
                // Loads and recovery markers are not stores; they never
                // open or extend an epoch.
            }
        }
    }
}

/// Split a globally-ordered event stream into per-thread epochs.
///
/// See [`for_each_epoch`] for the epoch-boundary rules.
pub fn split_epochs(events: &[Event]) -> Vec<Epoch> {
    let mut out = Vec::new();
    for_each_epoch(events, |e| out.push(e));
    out
}

/// The distinct thread ids appearing in a trace, sorted ascending.
///
/// Happens-before analyses allocate one vector-clock slot per thread;
/// this is the canonical slot order.
pub fn thread_ids(events: &[Event]) -> Vec<Tid> {
    let mut ids: Vec<Tid> = events.iter().map(|e| e.tid).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Total fence events (`Fence` + `DFence`) in a trace — the range of
/// 1-based fence ordinals a crash plan counting fences can target.
pub fn fence_count(events: &[Event]) -> u64 {
    events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fence | EventKind::DFence))
        .count() as u64
}

/// Epochs per second over the traced interval (Table 1's rightmost
/// column). `duration_ns` is the simulated wall-clock length of the run.
///
/// Returns 0.0 for an empty interval.
pub fn epochs_per_second(epoch_count: usize, duration_ns: u64) -> f64 {
    if duration_ns == 0 {
        return 0.0;
    }
    epoch_count as f64 * 1e9 / duration_ns as f64
}

/// Fraction of singleton epochs that wrote fewer than 10 bytes
/// ("Of the singletons, we saw that 60% updated fewer than 10 bytes" —
/// Section 5.1). Returns `None` when there are no singletons.
pub fn small_singleton_fraction(epochs: &[Epoch]) -> Option<f64> {
    let singles: Vec<_> = epochs.iter().filter(|e| e.is_singleton()).collect();
    if singles.is_empty() {
        return None;
    }
    let small = singles.iter().filter(|e| e.bytes < 10).count();
    Some(small as f64 / singles.len() as f64)
}

/// Fraction of PM bytes written with non-temporal stores
/// (Consequence 10: "about 96% of writes in PMFS and 67% in Mnemosyne
/// use NTIs"). Returns `None` for a trace with no PM bytes.
pub fn nt_fraction(epochs: &[Epoch]) -> Option<f64> {
    let total: u64 = epochs.iter().map(|e| e.bytes).sum();
    if total == 0 {
        return None;
    }
    let nt: u64 = epochs.iter().map(|e| e.nt_bytes).sum();
    Some(nt as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuffer;

    fn t0() -> Tid {
        Tid(0)
    }

    #[test]
    fn empty_trace_no_epochs() {
        assert!(split_epochs(&[]).is_empty());
    }

    #[test]
    fn fence_without_stores_is_not_an_epoch() {
        let mut t = TraceBuffer::new();
        t.fence(t0(), 1);
        t.fence(t0(), 2);
        assert!(split_epochs(t.events()).is_empty());
    }

    #[test]
    fn stores_between_fences_form_epochs() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.pm_store(t0(), 64, 8, false, Category::UserData, 2);
        t.fence(t0(), 3);
        t.pm_store(t0(), 128, 8, true, Category::RedoLog, 4);
        t.dfence(t0(), 5);
        let e = split_epochs(t.events());
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].unique_lines(), 2);
        assert!(!e[0].durable);
        assert_eq!(e[0].index, 0);
        assert_eq!(e[1].unique_lines(), 1);
        assert!(e[1].durable);
        assert_eq!(e[1].nt_bytes, 8);
        assert_eq!(e[1].index, 1);
    }

    #[test]
    fn start_time_attributed_after_empty_epoch_fence() {
        // Regression: an empty-epoch fence (and a transaction begun
        // before any store) must not disturb the next epoch's start
        // time or transaction attribution — both come from the epoch's
        // first store.
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.fence(t0(), 2);
        t.fence(t0(), 3); // closes an empty epoch: produces nothing
        t.tx_begin(t0(), 9, 4);
        t.pm_store(t0(), 64, 8, false, Category::UserData, 50);
        t.fence(t0(), 60);
        let e = split_epochs(t.events());
        assert_eq!(e.len(), 2);
        assert_eq!(
            e[1].start_ns, 50,
            "start is the first store, not the fence or tx begin"
        );
        assert_eq!(e[1].end_ns, 60);
        assert_eq!(e[1].tx, Some(9));
        assert_eq!(e[1].index, 1, "empty epoch consumed no sequence number");
    }

    #[test]
    fn trailing_unfenced_stores_dropped() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        assert!(split_epochs(t.events()).is_empty());
    }

    #[test]
    fn repeated_line_counts_once() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.pm_store(t0(), 8, 8, false, Category::UserData, 2);
        t.fence(t0(), 3);
        let e = split_epochs(t.events());
        assert_eq!(e[0].unique_lines(), 1);
        assert!(e[0].is_singleton());
        assert_eq!(e[0].bytes, 16);
    }

    #[test]
    fn cross_line_store_spans_lines() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 60, 8, false, Category::UserData, 1);
        t.fence(t0(), 2);
        let e = split_epochs(t.events());
        assert_eq!(e[0].unique_lines(), 2);
    }

    #[test]
    fn threads_have_independent_epochs() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 0, 8, false, Category::UserData, 1);
        t.pm_store(Tid(1), 64, 8, false, Category::UserData, 2);
        t.fence(Tid(0), 3);
        t.fence(Tid(1), 4);
        let e = split_epochs(t.events());
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].tid, Tid(0));
        assert_eq!(e[1].tid, Tid(1));
        assert_eq!(e[0].index, 0);
        assert_eq!(e[1].index, 0);
    }

    #[test]
    fn tx_attribution() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.fence(t0(), 2);
        t.tx_begin(t0(), 42, 3);
        t.pm_store(t0(), 64, 8, false, Category::UserData, 4);
        t.fence(t0(), 5);
        t.tx_end(t0(), 42, 6);
        t.pm_store(t0(), 128, 8, false, Category::UserData, 7);
        t.fence(t0(), 8);
        let e = split_epochs(t.events());
        assert_eq!(e[0].tx, None);
        assert_eq!(e[1].tx, Some(42));
        assert_eq!(e[2].tx, None);
    }

    #[test]
    fn category_byte_attribution() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.pm_store(t0(), 64, 24, false, Category::UndoLog, 2);
        t.fence(t0(), 3);
        let e = split_epochs(t.events());
        assert_eq!(e[0].cat_bytes(Category::UserData), 8);
        assert_eq!(e[0].cat_bytes(Category::UndoLog), 24);
        assert_eq!(e[0].cat_bytes(Category::RedoLog), 0);
    }

    #[test]
    fn epochs_per_second_math() {
        assert_eq!(epochs_per_second(0, 0), 0.0);
        let r = epochs_per_second(1_000, 1_000_000); // 1000 epochs in 1 ms
        assert!((r - 1e9 / 1e3).abs() < 1e-6);
    }

    #[test]
    fn small_singleton_fraction_math() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 4, false, Category::AllocMeta, 1); // small singleton
        t.fence(t0(), 2);
        t.pm_store(t0(), 64, 32, false, Category::UserData, 3); // big singleton
        t.fence(t0(), 4);
        let e = split_epochs(t.events());
        assert_eq!(small_singleton_fraction(&e), Some(0.5));
        assert_eq!(small_singleton_fraction(&[]), None);
    }

    #[test]
    fn nt_fraction_math() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, true, Category::RedoLog, 1);
        t.pm_store(t0(), 64, 24, false, Category::UserData, 2);
        t.fence(t0(), 3);
        let e = split_epochs(t.events());
        assert_eq!(nt_fraction(&e), Some(0.25));
        assert_eq!(nt_fraction(&[]), None);
    }

    #[test]
    fn loads_and_recovery_markers_do_not_open_epochs() {
        let mut t = TraceBuffer::new();
        t.pm_load(t0(), 0, 1);
        t.recovery_begin(t0(), 2);
        t.fence(t0(), 3); // closes nothing: no stores happened
        t.pm_store(t0(), 0, 8, false, Category::UserData, 4);
        t.pm_load(t0(), 64, 5); // mid-epoch load leaves stats alone
        t.fence(t0(), 6);
        let e = split_epochs(t.events());
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].stores, 1);
        assert_eq!(e[0].start_ns, 4);
    }

    #[test]
    fn thread_ids_sorted_and_deduped() {
        let mut t = TraceBuffer::new();
        t.fence(Tid(2), 1);
        t.fence(Tid(0), 2);
        t.fence(Tid(2), 3);
        assert_eq!(thread_ids(t.events()), vec![Tid(0), Tid(2)]);
        assert!(thread_ids(&[]).is_empty());
    }

    #[test]
    fn fence_count_counts_both_kinds() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.fence(t0(), 2);
        t.dfence(t0(), 3);
        assert_eq!(fence_count(t.events()), 2);
    }

    #[test]
    fn flushes_are_ignored() {
        let mut t = TraceBuffer::new();
        t.pm_store(t0(), 0, 8, false, Category::UserData, 1);
        t.flush(t0(), 0, 2);
        t.flush(t0(), 64, 2);
        t.fence(t0(), 3);
        let e = split_epochs(t.events());
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].unique_lines(), 1);
    }
}
