//! Recording side of the trace framework.

use crate::event::{Category, Event, EventKind, Tid, TxId};
use pmem::Addr;

/// An append-only buffer of trace [`Event`]s.
///
/// The `memsim` machine owns one of these and records every PM
/// operation as applications run — the analogue of WHISPER's `PM_*`
/// macros feeding ftrace. Recording can be disabled to measure
/// tracing-free runs (the paper reports 2–10× tracing overhead; ours is
/// a vector push).
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<Event>,
    enabled: bool,
}

impl TraceBuffer {
    /// A new, enabled, empty buffer.
    pub fn new() -> TraceBuffer {
        TraceBuffer {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A buffer that discards everything (for untraced timing runs).
    pub fn disabled() -> TraceBuffer {
        TraceBuffer {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off mid-run (e.g. to skip a warm-up phase).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The recorded events, in global timestamp order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Consume the buffer, returning the raw events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    fn push(&mut self, tid: Tid, at_ns: u64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { tid, at_ns, kind });
        }
    }

    /// Record a PM store.
    pub fn pm_store(
        &mut self,
        tid: Tid,
        addr: Addr,
        len: u32,
        nt: bool,
        cat: Category,
        at_ns: u64,
    ) {
        self.push(tid, at_ns, EventKind::PmStore { addr, len, nt, cat });
    }

    /// Record a `clwb`/`clflushopt`.
    pub fn flush(&mut self, tid: Tid, addr: Addr, at_ns: u64) {
        self.push(tid, at_ns, EventKind::Flush { addr });
    }

    /// Record an ordering fence (epoch boundary).
    pub fn fence(&mut self, tid: Tid, at_ns: u64) {
        self.push(tid, at_ns, EventKind::Fence);
    }

    /// Record a durability fence (also an epoch boundary).
    pub fn dfence(&mut self, tid: Tid, at_ns: u64) {
        self.push(tid, at_ns, EventKind::DFence);
    }

    /// Record the start of a durable transaction.
    pub fn tx_begin(&mut self, tid: Tid, id: TxId, at_ns: u64) {
        self.push(tid, at_ns, EventKind::TxBegin { id });
    }

    /// Record a transaction commit.
    pub fn tx_end(&mut self, tid: Tid, id: TxId, at_ns: u64) {
        self.push(tid, at_ns, EventKind::TxEnd { id });
    }

    /// Record a PM load (synthetic/seeded traces only — application
    /// runs do not trace their loads).
    pub fn pm_load(&mut self, tid: Tid, addr: Addr, at_ns: u64) {
        self.push(tid, at_ns, EventKind::PmLoad { addr });
    }

    /// Record the start of a recovery phase.
    pub fn recovery_begin(&mut self, tid: Tid, at_ns: u64) {
        self.push(tid, at_ns, EventKind::RecoveryBegin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::new();
        t.pm_store(Tid(0), 64, 8, false, Category::UserData, 1);
        t.fence(Tid(0), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].at_ns, 1);
        assert_eq!(t.events()[1].kind, EventKind::Fence);
    }

    #[test]
    fn disabled_discards() {
        let mut t = TraceBuffer::disabled();
        t.fence(Tid(0), 1);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn toggle_mid_run() {
        let mut t = TraceBuffer::new();
        t.fence(Tid(0), 1);
        t.set_enabled(false);
        t.fence(Tid(0), 2);
        t.set_enabled(true);
        t.fence(Tid(0), 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_keeps_enabled_flag() {
        let mut t = TraceBuffer::new();
        t.fence(Tid(0), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn into_events_round_trip() {
        let mut t = TraceBuffer::new();
        t.tx_begin(Tid(1), 7, 0);
        t.tx_end(Tid(1), 7, 9);
        let ev = t.into_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].kind, EventKind::TxEnd { id: 7 });
    }
}
