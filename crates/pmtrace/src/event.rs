//! Trace event types.

use pmem::Addr;

/// A (hardware) thread identifier.
///
/// The paper's simulated system has four cores with one hardware thread
/// each (Table 3); the suite driver interleaves logical client threads
/// onto these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A per-thread durable-transaction identifier.
pub type TxId = u64;

/// What a PM write was *for*.
///
/// Section 5 repeatedly distinguishes user data from the metadata that
/// recovery mechanisms add ("the dominant cause of small epochs was not
/// application data but metadata writes from memory allocation and
/// logging"), and the write-amplification analysis (Section 5.2) needs
/// bytes attributed to logs and allocators. Every store in the
/// reproduction carries one of these tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Application payload the user asked to persist.
    UserData,
    /// Redo-log entries (Mnemosyne-style).
    RedoLog,
    /// Undo-log entries (NVML/PMFS/N-store-style).
    UndoLog,
    /// Log descriptors/status words (commit markers, entry clears).
    LogMeta,
    /// Persistent allocator metadata (bitmaps, free lists, block states).
    AllocMeta,
    /// Filesystem metadata (inodes, directories, bitmaps).
    FsMeta,
    /// Application metadata that is neither log nor allocator state
    /// (e.g. Echo's descriptor status words, Vacation's global counters).
    AppMeta,
}

impl Category {
    /// All categories, for exhaustive reporting.
    pub const ALL: [Category; 7] = [
        Category::UserData,
        Category::RedoLog,
        Category::UndoLog,
        Category::LogMeta,
        Category::AllocMeta,
        Category::FsMeta,
        Category::AppMeta,
    ];
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::UserData => "user-data",
            Category::RedoLog => "redo-log",
            Category::UndoLog => "undo-log",
            Category::LogMeta => "log-meta",
            Category::AllocMeta => "alloc-meta",
            Category::FsMeta => "fs-meta",
            Category::AppMeta => "app-meta",
        };
        f.write_str(s)
    }
}

/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A store to persistent memory (cacheable or non-temporal).
    PmStore {
        /// Target byte address.
        addr: Addr,
        /// Length in bytes.
        len: u32,
        /// True for a non-temporal (cache-bypassing) store.
        nt: bool,
        /// What the write was for.
        cat: Category,
    },
    /// A `clwb`/`clflushopt` of the line containing `addr`.
    Flush {
        /// Address whose line is flushed.
        addr: Addr,
    },
    /// An ordering point: `sfence` on x86-64, `ofence` under HOPS.
    /// Ends the current epoch on the issuing thread.
    Fence,
    /// A durability point: `sfence` draining flushes on x86-64,
    /// `dfence` under HOPS. Also ends the current epoch.
    DFence,
    /// Start of a durable transaction.
    TxBegin {
        /// Per-thread transaction id.
        id: TxId,
    },
    /// Commit of a durable transaction.
    TxEnd {
        /// Per-thread transaction id.
        id: TxId,
    },
    /// A load from persistent memory.
    ///
    /// The applications do not record their loads (WHISPER traces
    /// writes, flushes, and fences); this event exists for synthetic
    /// and seeded traces where the happens-before engine needs the
    /// read side of a communication edge, and for recovery-phase
    /// checking ([`RecoveryBegin`](EventKind::RecoveryBegin)).
    PmLoad {
        /// Source byte address.
        addr: Addr,
    },
    /// Marks the start of a recovery phase: everything after this
    /// event models post-crash code re-reading persistent state. Used
    /// by seeded traces to exercise the P-RECOVERY-READ rule.
    RecoveryBegin,
}

/// One trace record: who, when (simulated nanoseconds), what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Issuing hardware thread.
    pub tid: Tid,
    /// Simulated global timestamp, nanoseconds. WHISPER's traces carry
    /// "a timestamp for each operation using a global clock" (Section 4).
    pub at_ns: u64,
    /// The event itself.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_distinct_and_displayable() {
        let mut seen = std::collections::HashSet::new();
        for c in Category::ALL {
            assert!(seen.insert(format!("{c}")), "duplicate display for {c:?}");
        }
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn tid_display() {
        assert_eq!(format!("{}", Tid(3)), "t3");
    }

    #[test]
    fn event_is_copy_and_comparable() {
        let e = Event {
            tid: Tid(0),
            at_ns: 5,
            kind: EventKind::Fence,
        };
        let f = e;
        assert_eq!(e, f);
    }
}
