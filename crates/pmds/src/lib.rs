//! Crash-recoverable persistent data structures.
//!
//! The WHISPER applications keep their recoverable state in a small set
//! of persistent structures: chained hash tables (Memcached, Redis,
//! Echo, the NVML `hashmap` micro-benchmark), a crit-bit tree (the NVML
//! `ctree` micro-benchmark, "inserts and deletes ... into a persistent
//! crit-bit tree"), red-black trees and linked lists (Vacation), an
//! append log (Echo's client submission logs), and an LRU list
//! (Memcached's replacement policy). This crate implements each of them
//! once, over the engine-independent [`pmtx::TxMem`] interface, so the
//! same structure runs under NVML-style undo logging or Mnemosyne-style
//! redo logging — mirroring how WHISPER mounts the same logical
//! structures over different access layers.
//!
//! All node allocation goes through a caller-supplied
//! [`pmalloc::PmAllocator`], inside the caller's transaction, so the
//! allocator-metadata epochs land inside transactions exactly as the
//! paper observes.
//!
//! Pointers are raw PM addresses (`u64`), with 0 as null. Every
//! structure has an `open` constructor that re-attaches to its PM
//! header after a crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod chash;
mod critbit;
mod dqueue;
mod hashfn;
mod hashmap;
mod lru;
mod plog;
mod rbtree;

pub use btree::{PBTree, BTREE_REGION_BYTES};
pub use chash::{CHash, HashOpFate, HashRecovery, CHASH_MAX_ITEM};
pub use critbit::{CritBitTree, CRITBIT_REGION_BYTES};
pub use dqueue::{DurableQueue, QueueOpFate, QueueRecovery, DQUEUE_MAX_PAYLOAD};
pub use hashfn::fnv1a;
pub use hashmap::PHashMap;
pub use lru::PLruList;
pub use plog::PLog;
pub use rbtree::{PRbTree, RBTREE_REGION_BYTES};

/// Errors from persistent data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsError {
    /// The underlying transaction engine failed.
    Tx(pmtx::TxError),
    /// The underlying allocator failed.
    Alloc(pmalloc::AllocError),
    /// A key or value exceeds the structure's inline limit.
    TooLarge {
        /// Offending length in bytes.
        len: usize,
    },
    /// `open` found no valid structure header at the given address.
    BadHeader {
        /// Address probed.
        addr: pmem::Addr,
    },
    /// A per-thread slot index outside the range the structure was
    /// created with.
    BadSlot {
        /// The offending slot.
        slot: u32,
        /// Slots the structure was created with.
        slots: u32,
    },
    /// The structure's node arena is exhausted.
    Full {
        /// Nodes the structure was created with room for.
        capacity: u64,
    },
}

impl std::fmt::Display for DsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsError::Tx(e) => write!(f, "transaction error: {e}"),
            DsError::Alloc(e) => write!(f, "allocation error: {e}"),
            DsError::TooLarge { len } => write!(f, "item of {len} bytes too large"),
            DsError::BadHeader { addr } => write!(f, "no structure header at {addr:#x}"),
            DsError::BadSlot { slot, slots } => {
                write!(f, "slot {slot} out of range (structure has {slots} slots)")
            }
            DsError::Full { capacity } => {
                write!(f, "node arena full ({capacity} nodes)")
            }
        }
    }
}

impl std::error::Error for DsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsError::Tx(e) => Some(e),
            DsError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pmtx::TxError> for DsError {
    fn from(e: pmtx::TxError) -> DsError {
        DsError::Tx(e)
    }
}

impl From<pmalloc::AllocError> for DsError {
    fn from(e: pmalloc::AllocError) -> DsError {
        DsError::Alloc(e)
    }
}
