//! Persistent chained hash table.

use crate::{fnv1a, DsError};
use memsim::Machine;
use pmalloc::PmAllocator;
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x5048_4153_484d_4150; // "PHASHMAP"
const NODE_HDR: u64 = 16; // next u64, key_len u32, val_len u32
/// Per-thread count shards, one cache line each, so concurrent inserts
/// do not collide on a single hot counter line (the paper's shared
/// persistent variables are a named cross-dependency source; real
/// stores shard or elide such counters).
const COUNT_SHARDS: u64 = 4;
const SHARDS_OFF: u64 = 64;
const BUCKETS_OFF: u64 = SHARDS_OFF + COUNT_SHARDS * 64;
/// Largest key+value payload an inline node can hold (bounded by the
/// transaction engines' fixed log-record payload).
pub(crate) const MAX_ITEM: usize = 400;

/// A persistent hash table with chaining, the workhorse structure of
/// WHISPER: Redis "stores frequently accessed key-value pairs in a hash
/// table and resolves collisions through chaining", Memcached "stores
/// objects in a hash table", Echo's master store is "a persistent hash
/// table", and the NVML `hashmap` micro-benchmark is one too.
///
/// Layout: a header line (`magic`, `nbuckets`, `count`) followed by the
/// bucket pointer array, in a caller-provided PM region; nodes
/// (`next`, key, value inline) come from a persistent allocator. All
/// mutations go through an open transaction on the caller's engine.
#[derive(Debug, Clone, Copy)]
pub struct PHashMap {
    head: Addr,
    nbuckets: u64,
}

impl PHashMap {
    /// Bytes of PM needed for the header, count shards, and buckets.
    pub fn region_bytes(nbuckets: u64) -> u64 {
        BUCKETS_OFF + nbuckets * 8
    }

    /// Create a fresh table in `region` (which must be zeroed, e.g.
    /// never-written PM), inside an open transaction.
    ///
    /// # Errors
    ///
    /// Transaction errors from the engine.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small or `nbuckets` is zero.
    pub fn create<E: TxMem>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        region: AddrRange,
        nbuckets: u64,
    ) -> Result<PHashMap, DsError> {
        assert!(nbuckets > 0, "need at least one bucket");
        assert!(
            region.len >= Self::region_bytes(nbuckets),
            "region too small for {nbuckets} buckets"
        );
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, nbuckets, Category::AppMeta)?;
        Ok(PHashMap {
            head: region.base,
            nbuckets,
        })
    }

    /// Re-attach to a table after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `head` does not hold a table.
    pub fn open(m: &mut Machine, tid: Tid, head: Addr) -> Result<PHashMap, DsError> {
        if m.load_u64(tid, head) != MAGIC {
            return Err(DsError::BadHeader { addr: head });
        }
        let nbuckets = m.load_u64(tid, head + 8);
        Ok(PHashMap { head, nbuckets })
    }

    /// Number of entries (sums the per-thread count shards).
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        // Shards hold signed deltas (a cross-thread remove drives a
        // shard negative); the non-negative total is exact modulo 2^64.
        (0..COUNT_SHARDS)
            .map(|s| m.load_u64(tid, self.head + SHARDS_OFF + s * 64))
            .fold(0u64, u64::wrapping_add)
    }

    fn bump_count<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        delta: i64,
    ) -> Result<(), DsError> {
        let shard = self.head + SHARDS_OFF + (tid.0 as u64 % COUNT_SHARDS) * 64;
        let n = eng.tx_read_u64(m, tid, shard);
        eng.tx_write_u64(
            m,
            tid,
            shard,
            n.wrapping_add_signed(delta),
            Category::AppMeta,
        )?;
        Ok(())
    }

    /// Whether the table is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        self.len(m, tid) == 0
    }

    fn bucket_addr(&self, key: &[u8]) -> Addr {
        self.head + BUCKETS_OFF + (fnv1a(key) % self.nbuckets) * 8
    }

    /// Find `key`: returns `(prev_link_addr, node_addr)` where
    /// `prev_link_addr` is the pointer slot that references the node.
    fn find<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        key: &[u8],
    ) -> Option<(Addr, Addr)> {
        let mut link = self.bucket_addr(key);
        let mut node = eng.tx_read_u64(m, tid, link);
        while node != 0 {
            let klen = eng.tx_read_u32(m, tid, node + 8) as usize;
            if klen == key.len() {
                let k = eng.tx_read(m, tid, node + NODE_HDR, klen);
                if k == key {
                    return Some((link, node));
                }
            }
            link = node; // next pointer is the first node field
            node = eng.tx_read_u64(m, tid, node);
        }
        None
    }

    /// Insert or replace. Returns `true` if the key was new.
    ///
    /// # Errors
    ///
    /// [`DsError::TooLarge`] for oversized items; engine/allocator
    /// errors otherwise.
    pub fn insert<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
        val: &[u8],
    ) -> Result<bool, DsError> {
        if key.len() + val.len() > MAX_ITEM {
            return Err(DsError::TooLarge {
                len: key.len() + val.len(),
            });
        }
        if let Some((link, node)) = self.find(m, eng, tid, key) {
            let old_vlen = eng.tx_read_u32(m, tid, node + 12) as usize;
            if old_vlen == val.len() {
                // Overwrite in place.
                eng.tx_write(
                    m,
                    tid,
                    node + NODE_HDR + key.len() as u64,
                    val,
                    Category::UserData,
                )?;
            } else {
                // Replace the node.
                let next = eng.tx_read_u64(m, tid, node);
                let new = self.new_node(m, eng, tid, alloc, key, val, next)?;
                eng.tx_write_u64(m, tid, link, new, Category::UserData)?;
                let mut w = memsim::PmWriter::new(tid);
                alloc.free(m, &mut w, node)?;
            }
            Ok(false)
        } else {
            let bucket = self.bucket_addr(key);
            let next = eng.tx_read_u64(m, tid, bucket);
            let new = self.new_node(m, eng, tid, alloc, key, val, next)?;
            eng.tx_write_u64(m, tid, bucket, new, Category::UserData)?;
            self.bump_count(m, eng, tid, 1)?;
            Ok(true)
        }
    }

    #[allow(clippy::too_many_arguments)] // machine + engine + allocator plumbing
    fn new_node<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
        val: &[u8],
        next: Addr,
    ) -> Result<Addr, DsError> {
        let mut w = memsim::PmWriter::new(tid);
        let node = alloc.alloc(m, &mut w, NODE_HDR + (key.len() + val.len()) as u64)?;
        // The node is one contiguous object: a single PM_MEMCPY-style
        // logged write (Figure 2), as NVML copies freshly-allocated
        // objects.
        let mut buf = Vec::with_capacity(NODE_HDR as usize + key.len() + val.len());
        buf.extend_from_slice(&next.to_le_bytes());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(val.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(val);
        eng.tx_write(m, tid, node, &buf, Category::UserData)?;
        Ok(node)
    }

    /// Look up `key`.
    pub fn get<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        key: &[u8],
    ) -> Option<Vec<u8>> {
        let (_, node) = self.find(m, eng, tid, key)?;
        let klen = eng.tx_read_u32(m, tid, node + 8) as usize;
        let vlen = eng.tx_read_u32(m, tid, node + 12) as usize;
        Some(eng.tx_read(m, tid, node + NODE_HDR + klen as u64, vlen))
    }

    /// Remove `key`; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn remove<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
    ) -> Result<bool, DsError> {
        match self.find(m, eng, tid, key) {
            Some((link, node)) => {
                let next = eng.tx_read_u64(m, tid, node);
                eng.tx_write_u64(m, tid, link, next, Category::UserData)?;
                self.bump_count(m, eng, tid, -1)?;
                let mut w = memsim::PmWriter::new(tid);
                alloc.free(m, &mut w, node)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Non-transactional scan of every `(key, value)` pair — used by
    /// recovery checks and garbage collection.
    pub fn for_each(&self, m: &mut Machine, tid: Tid, mut f: impl FnMut(&[u8], &[u8])) {
        for b in 0..self.nbuckets {
            let mut node = m.load_u64(tid, self.head + BUCKETS_OFF + b * 8);
            while node != 0 {
                let klen = m.load_u32(tid, node + 8) as usize;
                let vlen = m.load_u32(tid, node + 12) as usize;
                let k = m.load_vec(tid, node + NODE_HDR, klen);
                let v = m.load_vec(tid, node + NODE_HDR + klen as u64, vlen);
                f(&k, &v);
                node = m.load_u64(tid, node);
            }
        }
    }

    /// Addresses of every live node — for allocator GC integration.
    pub fn node_addrs(&self, m: &mut Machine, tid: Tid) -> Vec<Addr> {
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut node = m.load_u64(tid, self.head + BUCKETS_OFF + b * 8);
            while node != 0 {
                out.push(node);
                node = m.load_u64(tid, node);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};
    use pmalloc::SlabBitmapAlloc;
    use pmtx::UndoTxEngine;

    struct Fix {
        m: Machine,
        eng: UndoTxEngine,
        alloc: SlabBitmapAlloc,
        map: PHashMap,
    }

    const TID: Tid = Tid(0);

    fn setup() -> Fix {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 1 << 20);
        let heap = AddrRange::new(pm.base + (1 << 20), 8 << 20);
        let table = AddrRange::new(pm.base + (9 << 20), PHashMap::region_bytes(64));
        let mut eng = UndoTxEngine::format(&mut m, log, 4);
        let mut w = memsim::PmWriter::new(TID);
        let alloc = SlabBitmapAlloc::format(&mut m, &mut w, heap);
        eng.begin(&mut m, TID).unwrap();
        let map = PHashMap::create(&mut m, &mut eng, TID, table, 64).unwrap();
        eng.commit(&mut m, TID).unwrap();
        Fix { m, eng, alloc, map }
    }

    fn tx<T>(fx: &mut Fix, f: impl FnOnce(&mut Fix) -> T) -> T {
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let r = f(fx);
        fx.eng.commit(&mut fx.m, TID).unwrap();
        r
    }

    #[test]
    fn insert_get_round_trip() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            let fresh = fx
                .map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"alpha", b"one")
                .unwrap();
            assert!(fresh);
        });
        let v = fx.map.get(&mut fx.m, &mut fx.eng, TID, b"alpha");
        assert_eq!(v.as_deref(), Some(&b"one"[..]));
        assert_eq!(fx.map.len(&mut fx.m, TID), 1);
    }

    #[test]
    fn missing_key_is_none() {
        let mut fx = setup();
        assert_eq!(fx.map.get(&mut fx.m, &mut fx.eng, TID, b"ghost"), None);
    }

    #[test]
    fn replace_same_size_in_place() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", b"aaa")
                .unwrap();
        });
        let allocs_before = fx.alloc.stats().allocs;
        tx(&mut fx, |fx| {
            let fresh = fx
                .map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", b"bbb")
                .unwrap();
            assert!(!fresh);
        });
        assert_eq!(
            fx.alloc.stats().allocs,
            allocs_before,
            "no realloc for same size"
        );
        assert_eq!(
            fx.map.get(&mut fx.m, &mut fx.eng, TID, b"k").as_deref(),
            Some(&b"bbb"[..])
        );
        assert_eq!(fx.map.len(&mut fx.m, TID), 1);
    }

    #[test]
    fn replace_different_size_reallocates() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", b"short")
                .unwrap();
        });
        tx(&mut fx, |fx| {
            fx.map
                .insert(
                    &mut fx.m,
                    &mut fx.eng,
                    TID,
                    &mut fx.alloc,
                    b"k",
                    b"a-much-longer-value",
                )
                .unwrap();
        });
        assert_eq!(
            fx.map.get(&mut fx.m, &mut fx.eng, TID, b"k").as_deref(),
            Some(&b"a-much-longer-value"[..])
        );
        assert_eq!(fx.map.len(&mut fx.m, TID), 1);
        assert_eq!(fx.alloc.stats().frees, 1, "old node freed");
    }

    #[test]
    fn remove_unlinks_and_frees() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"x", b"1")
                .unwrap();
            fx.map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"y", b"2")
                .unwrap();
        });
        let removed = tx(&mut fx, |fx| {
            fx.map
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"x")
                .unwrap()
        });
        assert!(removed);
        assert_eq!(fx.map.get(&mut fx.m, &mut fx.eng, TID, b"x"), None);
        assert_eq!(
            fx.map.get(&mut fx.m, &mut fx.eng, TID, b"y").as_deref(),
            Some(&b"2"[..])
        );
        assert_eq!(fx.map.len(&mut fx.m, TID), 1);
        let removed_again = tx(&mut fx, |fx| {
            fx.map
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"x")
                .unwrap()
        });
        assert!(!removed_again);
    }

    #[test]
    fn collisions_chain_correctly() {
        // 1-bucket table forces every key into one chain.
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let log = AddrRange::new(pm.base, 1 << 20);
        let heap = AddrRange::new(pm.base + (1 << 20), 8 << 20);
        let table = AddrRange::new(pm.base + (9 << 20), PHashMap::region_bytes(1));
        let mut eng = UndoTxEngine::format(&mut m, log, 4);
        let mut w = memsim::PmWriter::new(TID);
        let mut alloc = SlabBitmapAlloc::format(&mut m, &mut w, heap);
        eng.begin(&mut m, TID).unwrap();
        let map = PHashMap::create(&mut m, &mut eng, TID, table, 1).unwrap();
        eng.commit(&mut m, TID).unwrap();
        for i in 0..20u32 {
            eng.begin(&mut m, TID).unwrap();
            map.insert(
                &mut m,
                &mut eng,
                TID,
                &mut alloc,
                &i.to_le_bytes(),
                &[i as u8; 5],
            )
            .unwrap();
            eng.commit(&mut m, TID).unwrap();
        }
        for i in 0..20u32 {
            assert_eq!(
                map.get(&mut m, &mut eng, TID, &i.to_le_bytes()),
                Some(vec![i as u8; 5])
            );
        }
        // Remove from middle of chain.
        eng.begin(&mut m, TID).unwrap();
        map.remove(&mut m, &mut eng, TID, &mut alloc, &7u32.to_le_bytes())
            .unwrap();
        eng.commit(&mut m, TID).unwrap();
        assert_eq!(map.get(&mut m, &mut eng, TID, &7u32.to_le_bytes()), None);
        assert_eq!(map.len(&mut m, TID), 19);
    }

    #[test]
    fn oversized_item_rejected() {
        let mut fx = setup();
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let big = vec![0u8; MAX_ITEM + 1];
        let r = fx
            .map
            .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", &big);
        assert!(matches!(r, Err(DsError::TooLarge { .. })));
        fx.eng.abort(&mut fx.m, TID).unwrap();
    }

    #[test]
    fn survives_crash_and_reopen() {
        let mut fx = setup();
        let head = fx.map.head;
        tx(&mut fx, |fx| {
            fx.map
                .insert(
                    &mut fx.m,
                    &mut fx.eng,
                    TID,
                    &mut fx.alloc,
                    b"persist",
                    b"me",
                )
                .unwrap();
        });
        let img = fx.m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let pm = m2.config().map.pm;
        let mut eng2 = UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 1 << 20), 4);
        let map2 = PHashMap::open(&mut m2, TID, head).unwrap();
        assert_eq!(
            map2.get(&mut m2, &mut eng2, TID, b"persist").as_deref(),
            Some(&b"me"[..])
        );
        assert_eq!(map2.len(&mut m2, TID), 1);
    }

    #[test]
    fn crash_mid_tx_leaves_map_consistent() {
        for seed in 0..25 {
            let mut fx = setup();
            let head = fx.map.head;
            tx(&mut fx, |fx| {
                fx.map
                    .insert(
                        &mut fx.m,
                        &mut fx.eng,
                        TID,
                        &mut fx.alloc,
                        b"stable",
                        b"val",
                    )
                    .unwrap();
            });
            // Crash mid-insert of a second key.
            fx.eng.begin(&mut fx.m, TID).unwrap();
            fx.map
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"torn", b"half")
                .unwrap();
            let img = fx.m.crash(CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let pm = m2.config().map.pm;
            let mut eng2 = UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 1 << 20), 4);
            let map2 = PHashMap::open(&mut m2, TID, head).unwrap();
            assert_eq!(
                map2.get(&mut m2, &mut eng2, TID, b"stable").as_deref(),
                Some(&b"val"[..]),
                "seed {seed}"
            );
            assert_eq!(
                map2.get(&mut m2, &mut eng2, TID, b"torn"),
                None,
                "seed {seed}: uncommitted insert must roll back"
            );
            assert_eq!(map2.len(&mut m2, TID), 1, "seed {seed}");
        }
    }

    #[test]
    fn open_rejects_garbage() {
        let mut fx = setup();
        let pm_base = fx.m.config().map.pm.base;
        assert!(matches!(
            PHashMap::open(&mut fx.m, TID, pm_base + (20 << 20)),
            Err(DsError::BadHeader { .. })
        ));
    }

    #[test]
    fn for_each_visits_all() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            for i in 0..10u8 {
                fx.map
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, &[i], &[i, i])
                    .unwrap();
            }
        });
        let mut seen = Vec::new();
        fx.map.for_each(&mut fx.m, TID, |k, v| {
            assert_eq!(v, [k[0], k[0]]);
            seen.push(k[0]);
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(fx.map.node_addrs(&mut fx.m, TID).len(), 10);
    }
}
