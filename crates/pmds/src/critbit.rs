//! Persistent crit-bit tree.

use crate::DsError;
use memsim::Machine;
use pmalloc::PmAllocator;
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x4352_4954_4249_5421; // "CRITBIT!"
const TAG_LEAF: u32 = 0;
const TAG_INTERNAL: u32 = 1;
// Internal node: tag u32, otherbits u32, byte_idx u64, child0 u64, child1 u64
const INTERNAL_BYTES: u64 = 32;
// Leaf: tag u32, key_len u32, val u64, key…
const LEAF_HDR: u64 = 16;
const MAX_KEY: usize = 376;
const COUNT_SHARDS: u64 = 4;

/// Bytes of PM a tree header needs (header line + count shards).
pub const CRITBIT_REGION_BYTES: u64 = 64 + COUNT_SHARDS * 64;

/// A persistent crit-bit (PATRICIA) tree mapping byte keys to `u64`
/// values — the structure behind WHISPER's `ctree` micro-benchmark
/// ("inserts and deletes ... into a persistent crit-bit tree",
/// Section 3.2.2, after djb's crit-bit trees).
///
/// Keys are binary strings up to 512 bytes. As in the classic
/// formulation, a key that equals another key zero-extended (e.g.
/// `b"a"` vs `b"a\0"`) is not distinguishable; callers use fixed-width
/// or terminator-free keys.
#[derive(Debug, Clone, Copy)]
pub struct CritBitTree {
    base: Addr,
}

impl CritBitTree {
    /// Create a fresh tree in `region` (header only; nodes come from the
    /// allocator), inside an open transaction.
    ///
    /// # Errors
    ///
    /// Engine errors.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one header line.
    pub fn create<E: TxMem>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        region: AddrRange,
    ) -> Result<CritBitTree, DsError> {
        assert!(
            region.len >= CRITBIT_REGION_BYTES,
            "crit-bit region too small"
        );
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, 0, Category::AppMeta)?; // root
        Ok(CritBitTree { base: region.base })
    }

    /// Re-attach after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `base` does not hold a tree.
    pub fn open(m: &mut Machine, tid: Tid, base: Addr) -> Result<CritBitTree, DsError> {
        if m.load_u64(tid, base) != MAGIC {
            return Err(DsError::BadHeader { addr: base });
        }
        Ok(CritBitTree { base })
    }

    /// Number of keys (sums the per-thread count shards).
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        // Each shard holds a signed (two's-complement) delta: a thread
        // that removes a key another thread inserted drives its own
        // shard negative. Only the total is non-negative, and summing
        // modulo 2^64 recovers it exactly.
        (0..COUNT_SHARDS)
            .map(|s| m.load_u64(tid, self.base + 64 + s * 64))
            .fold(0u64, u64::wrapping_add)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        self.len(m, tid) == 0
    }

    fn key_byte(key: &[u8], idx: u64) -> u8 {
        key.get(idx as usize).copied().unwrap_or(0)
    }

    fn direction(otherbits: u32, c: u8) -> u64 {
        ((1 + (otherbits | c as u32)) >> 8) as u64
    }

    fn leaf_key<E: TxMem>(m: &mut Machine, eng: &mut E, tid: Tid, leaf: Addr) -> Vec<u8> {
        let klen = eng.tx_read_u32(m, tid, leaf + 4) as usize;
        eng.tx_read(m, tid, leaf + LEAF_HDR, klen)
    }

    /// Walk to the best-matching leaf for `key`. Returns 0 on empty.
    fn best_leaf<E: TxMem>(&self, m: &mut Machine, eng: &mut E, tid: Tid, key: &[u8]) -> Addr {
        let mut node = eng.tx_read_u64(m, tid, self.base + 8);
        if node == 0 {
            return 0;
        }
        while eng.tx_read_u32(m, tid, node) == TAG_INTERNAL {
            let otherbits = eng.tx_read_u32(m, tid, node + 4);
            let byte_idx = eng.tx_read_u64(m, tid, node + 8);
            let dir = Self::direction(otherbits, Self::key_byte(key, byte_idx));
            node = eng.tx_read_u64(m, tid, node + 16 + dir * 8);
        }
        node
    }

    /// Look up `key`.
    pub fn get<E: TxMem>(&self, m: &mut Machine, eng: &mut E, tid: Tid, key: &[u8]) -> Option<u64> {
        let leaf = self.best_leaf(m, eng, tid, key);
        if leaf == 0 {
            return None;
        }
        if Self::leaf_key(m, eng, tid, leaf) == key {
            Some(eng.tx_read_u64(m, tid, leaf + 8))
        } else {
            None
        }
    }

    fn new_leaf<E: TxMem, A: PmAllocator>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
        val: u64,
    ) -> Result<Addr, DsError> {
        let mut w = memsim::PmWriter::new(tid);
        let leaf = alloc.alloc(m, &mut w, LEAF_HDR + key.len() as u64)?;
        let mut hdr = [0u8; LEAF_HDR as usize];
        hdr[0..4].copy_from_slice(&TAG_LEAF.to_le_bytes());
        hdr[4..8].copy_from_slice(&(key.len() as u32).to_le_bytes());
        hdr[8..16].copy_from_slice(&val.to_le_bytes());
        eng.tx_write(m, tid, leaf, &hdr, Category::UserData)?;
        eng.tx_write(m, tid, leaf + LEAF_HDR, key, Category::UserData)?;
        Ok(leaf)
    }

    /// Insert or update. Returns `true` if the key was new.
    ///
    /// # Errors
    ///
    /// [`DsError::TooLarge`] for keys over 512 bytes; engine/allocator
    /// errors otherwise.
    pub fn insert<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
        val: u64,
    ) -> Result<bool, DsError> {
        if key.len() > MAX_KEY {
            return Err(DsError::TooLarge { len: key.len() });
        }
        let root = eng.tx_read_u64(m, tid, self.base + 8);
        if root == 0 {
            let leaf = Self::new_leaf(m, eng, tid, alloc, key, val)?;
            eng.tx_write_u64(m, tid, self.base + 8, leaf, Category::UserData)?;
            self.bump_count(m, eng, tid, 1)?;
            return Ok(true);
        }
        let best = self.best_leaf(m, eng, tid, key);
        let best_key = Self::leaf_key(m, eng, tid, best);
        // Find the critical (byte, bit).
        let maxlen = key.len().max(best_key.len()) as u64;
        let mut crit: Option<(u64, u8)> = None;
        for p in 0..maxlen {
            let x = Self::key_byte(key, p) ^ Self::key_byte(&best_key, p);
            if x != 0 {
                crit = Some((p, x));
                break;
            }
        }
        let Some((byte_idx, mut bits)) = crit else {
            // Keys equal: update in place.
            eng.tx_write_u64(m, tid, best + 8, val, Category::UserData)?;
            return Ok(false);
        };
        // Isolate most significant differing bit, then invert.
        while bits & (bits - 1) != 0 {
            bits &= bits - 1;
        }
        let otherbits = (bits ^ 0xff) as u32;
        let newdir = Self::direction(otherbits, Self::key_byte(key, byte_idx));

        // Find the insertion link: the first link whose node is "past"
        // the critical position in crit-bit order.
        let mut link = self.base + 8;
        loop {
            let node = eng.tx_read_u64(m, tid, link);
            if eng.tx_read_u32(m, tid, node) != TAG_INTERNAL {
                break;
            }
            let n_other = eng.tx_read_u32(m, tid, node + 4);
            let n_byte = eng.tx_read_u64(m, tid, node + 8);
            if n_byte > byte_idx || (n_byte == byte_idx && n_other > otherbits) {
                break;
            }
            let dir = Self::direction(n_other, Self::key_byte(key, n_byte));
            link = node + 16 + dir * 8;
        }

        let leaf = Self::new_leaf(m, eng, tid, alloc, key, val)?;
        let mut w = memsim::PmWriter::new(tid);
        let internal = alloc.alloc(m, &mut w, INTERNAL_BYTES)?;
        let displaced = eng.tx_read_u64(m, tid, link);
        let mut node = [0u8; INTERNAL_BYTES as usize];
        node[0..4].copy_from_slice(&TAG_INTERNAL.to_le_bytes());
        node[4..8].copy_from_slice(&otherbits.to_le_bytes());
        node[8..16].copy_from_slice(&byte_idx.to_le_bytes());
        let (a, b) = if newdir == 0 {
            (leaf, displaced)
        } else {
            (displaced, leaf)
        };
        node[16..24].copy_from_slice(&a.to_le_bytes());
        node[24..32].copy_from_slice(&b.to_le_bytes());
        eng.tx_write(m, tid, internal, &node, Category::UserData)?;
        eng.tx_write_u64(m, tid, link, internal, Category::UserData)?;
        self.bump_count(m, eng, tid, 1)?;
        Ok(true)
    }

    /// Remove `key`; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn remove<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: &[u8],
    ) -> Result<bool, DsError> {
        let root = eng.tx_read_u64(m, tid, self.base + 8);
        if root == 0 {
            return Ok(false);
        }
        // Walk remembering the parent internal node and the link to it.
        let mut link = self.base + 8; // link holding current node
        let mut parent_link: Option<(Addr, u64)> = None; // (parent node, dir taken)
        let mut node = root;
        while eng.tx_read_u32(m, tid, node) == TAG_INTERNAL {
            let otherbits = eng.tx_read_u32(m, tid, node + 4);
            let byte_idx = eng.tx_read_u64(m, tid, node + 8);
            let dir = Self::direction(otherbits, Self::key_byte(key, byte_idx));
            parent_link = Some((node, dir));
            link = node + 16 + dir * 8;
            node = eng.tx_read_u64(m, tid, link);
        }
        if Self::leaf_key(m, eng, tid, node) != key {
            return Ok(false);
        }
        let mut w = memsim::PmWriter::new(tid);
        match parent_link {
            None => {
                eng.tx_write_u64(m, tid, self.base + 8, 0, Category::UserData)?;
            }
            Some((parent, dir)) => {
                // Replace the parent with the sibling subtree. We need
                // the link *to the parent*, which is the root link or a
                // grandparent child slot — rewalk to find it.
                let sibling = eng.tx_read_u64(m, tid, parent + 16 + (1 - dir) * 8);
                let mut glink = self.base + 8;
                loop {
                    let n = eng.tx_read_u64(m, tid, glink);
                    if n == parent {
                        break;
                    }
                    let otherbits = eng.tx_read_u32(m, tid, n + 4);
                    let byte_idx = eng.tx_read_u64(m, tid, n + 8);
                    let d = Self::direction(otherbits, Self::key_byte(key, byte_idx));
                    glink = n + 16 + d * 8;
                }
                eng.tx_write_u64(m, tid, glink, sibling, Category::UserData)?;
                alloc.free(m, &mut w, parent)?;
            }
        }
        alloc.free(m, &mut w, node)?;
        self.bump_count(m, eng, tid, -1)?;
        let _ = link;
        Ok(true)
    }

    fn bump_count<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        delta: i64,
    ) -> Result<(), DsError> {
        let shard = self.base + 64 + (tid.0 as u64 % COUNT_SHARDS) * 64;
        let n = eng.tx_read_u64(m, tid, shard);
        eng.tx_write_u64(
            m,
            tid,
            shard,
            n.wrapping_add_signed(delta),
            Category::AppMeta,
        )?;
        Ok(())
    }

    /// Visit every `(key, value)` in key order (non-transactional).
    pub fn for_each(&self, m: &mut Machine, tid: Tid, mut f: impl FnMut(&[u8], u64)) {
        fn walk(m: &mut Machine, tid: Tid, node: Addr, f: &mut impl FnMut(&[u8], u64)) {
            if node == 0 {
                return;
            }
            if m.load_u32(tid, node) == TAG_INTERNAL {
                let l = m.load_u64(tid, node + 16);
                let r = m.load_u64(tid, node + 24);
                walk(m, tid, l, f);
                walk(m, tid, r, f);
            } else {
                let klen = m.load_u32(tid, node + 4) as usize;
                let key = m.load_vec(tid, node + LEAF_HDR, klen);
                let val = m.load_u64(tid, node + 8);
                f(&key, val);
            }
        }
        let root = m.load_u64(tid, self.base + 8);
        walk(m, tid, root, &mut f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmalloc::SlabBitmapAlloc;
    use pmtx::UndoTxEngine;

    const TID: Tid = Tid(0);

    struct Fix {
        m: Machine,
        eng: UndoTxEngine,
        alloc: SlabBitmapAlloc,
        tree: CritBitTree,
    }

    fn setup() -> Fix {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let mut eng = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 16 << 20), 4);
        let mut w = memsim::PmWriter::new(TID);
        let alloc = SlabBitmapAlloc::format(
            &mut m,
            &mut w,
            AddrRange::new(pm.base + (1 << 20), 16 << 20),
        );
        eng.begin(&mut m, TID).unwrap();
        let tree = CritBitTree::create(
            &mut m,
            &mut eng,
            TID,
            AddrRange::new(pm.base + (20 << 20), CRITBIT_REGION_BYTES),
        )
        .unwrap();
        eng.commit(&mut m, TID).unwrap();
        Fix {
            m,
            eng,
            alloc,
            tree,
        }
    }

    fn tx<T>(fx: &mut Fix, f: impl FnOnce(&mut Fix) -> T) -> T {
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let r = f(fx);
        fx.eng.commit(&mut fx.m, TID).unwrap();
        r
    }

    #[test]
    fn insert_get_single() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            assert!(fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"key", 7)
                .unwrap());
        });
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, b"key"), Some(7));
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, b"other"), None);
        assert_eq!(fx.tree.len(&mut fx.m, TID), 1);
    }

    #[test]
    fn update_existing_key() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", 1)
                .unwrap();
            let fresh = fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"k", 2)
                .unwrap();
            assert!(!fresh);
        });
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, b"k"), Some(2));
        assert_eq!(fx.tree.len(&mut fx.m, TID), 1);
    }

    #[test]
    fn remove_on_a_different_thread_keeps_len_exact() {
        // Count shards are picked by tid: when thread 1 removes keys
        // thread 0 inserted, shard 1 goes negative (mod 2^64) while
        // shard 0 stays positive. The total must still come out right
        // instead of tripping an underflow check.
        let mut fx = setup();
        let t0 = Tid(0);
        let t1 = Tid(1);
        for k in [b"a".as_slice(), b"b", b"c"] {
            fx.eng.begin(&mut fx.m, t0).unwrap();
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, t0, &mut fx.alloc, k, 1)
                .unwrap();
            fx.eng.commit(&mut fx.m, t0).unwrap();
        }
        for k in [b"a".as_slice(), b"b"] {
            fx.eng.begin(&mut fx.m, t1).unwrap();
            assert!(fx
                .tree
                .remove(&mut fx.m, &mut fx.eng, t1, &mut fx.alloc, k)
                .unwrap());
            fx.eng.commit(&mut fx.m, t1).unwrap();
        }
        assert_eq!(fx.tree.len(&mut fx.m, t0), 1);
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, t0, b"c"), Some(1));
    }

    #[test]
    fn many_keys_against_btreemap() {
        let mut fx = setup();
        let mut model = std::collections::BTreeMap::new();
        let mut state = 12345u64;
        for i in 0..200u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("key-{:04}", state % 500);
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(
                        &mut fx.m,
                        &mut fx.eng,
                        TID,
                        &mut fx.alloc,
                        key.as_bytes(),
                        i,
                    )
                    .unwrap();
            });
            model.insert(key, i);
        }
        assert_eq!(fx.tree.len(&mut fx.m, TID), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(
                fx.tree.get(&mut fx.m, &mut fx.eng, TID, k.as_bytes()),
                Some(*v)
            );
        }
        // In-order traversal matches the model's key order.
        let mut keys = Vec::new();
        fx.tree
            .for_each(&mut fx.m, TID, |k, _| keys.push(k.to_vec()));
        let model_keys: Vec<Vec<u8>> = model.keys().map(|k| k.as_bytes().to_vec()).collect();
        assert_eq!(keys, model_keys);
    }

    #[test]
    fn remove_root_leaf() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"solo", 1)
                .unwrap();
            assert!(fx
                .tree
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"solo")
                .unwrap());
        });
        assert!(fx.tree.is_empty(&mut fx.m, TID));
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, b"solo"), None);
    }

    #[test]
    fn remove_inner_keys() {
        let mut fx = setup();
        let keys: Vec<String> = (0..50).map(|i| format!("k{i:03}")).collect();
        tx(&mut fx, |fx| {
            for (i, k) in keys.iter().enumerate() {
                fx.tree
                    .insert(
                        &mut fx.m,
                        &mut fx.eng,
                        TID,
                        &mut fx.alloc,
                        k.as_bytes(),
                        i as u64,
                    )
                    .unwrap();
            }
        });
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                let removed = tx(&mut fx, |fx| {
                    fx.tree
                        .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, k.as_bytes())
                        .unwrap()
                });
                assert!(removed, "{k}");
            }
        }
        for (i, k) in keys.iter().enumerate() {
            let expect = if i % 3 == 0 { None } else { Some(i as u64) };
            assert_eq!(
                fx.tree.get(&mut fx.m, &mut fx.eng, TID, k.as_bytes()),
                expect,
                "{k}"
            );
        }
    }

    #[test]
    fn remove_missing_is_false() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"present", 1)
                .unwrap();
            assert!(!fx
                .tree
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"absent")
                .unwrap());
        });
        // Empty-tree remove:
        let mut fx2 = setup();
        tx(&mut fx2, |fx| {
            assert!(!fx
                .tree
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"x")
                .unwrap());
        });
    }

    #[test]
    fn oversized_key_rejected() {
        let mut fx = setup();
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let big = vec![1u8; MAX_KEY + 1];
        assert!(matches!(
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, &big, 0),
            Err(DsError::TooLarge { .. })
        ));
        fx.eng.abort(&mut fx.m, TID).unwrap();
    }

    #[test]
    fn survives_crash() {
        let mut fx = setup();
        let base = fx.tree.base;
        tx(&mut fx, |fx| {
            for i in 0..10u64 {
                fx.tree
                    .insert(
                        &mut fx.m,
                        &mut fx.eng,
                        TID,
                        &mut fx.alloc,
                        &i.to_be_bytes(),
                        i * 10,
                    )
                    .unwrap();
            }
        });
        let img = fx.m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let pm = m2.config().map.pm;
        let mut eng2 = UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 16 << 20), 4);
        let tree2 = CritBitTree::open(&mut m2, TID, base).unwrap();
        for i in 0..10u64 {
            assert_eq!(
                tree2.get(&mut m2, &mut eng2, TID, &i.to_be_bytes()),
                Some(i * 10)
            );
        }
    }

    #[test]
    fn crash_mid_insert_rolls_back() {
        for seed in [1u64, 5, 11, 23] {
            let mut fx = setup();
            let base = fx.tree.base;
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"committed", 1)
                    .unwrap();
            });
            fx.eng.begin(&mut fx.m, TID).unwrap();
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, b"torn", 2)
                .unwrap();
            let img = fx.m.crash(memsim::CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let pm = m2.config().map.pm;
            let mut eng2 =
                UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 16 << 20), 4);
            let tree2 = CritBitTree::open(&mut m2, TID, base).unwrap();
            assert_eq!(
                tree2.get(&mut m2, &mut eng2, TID, b"committed"),
                Some(1),
                "seed {seed}"
            );
            assert_eq!(
                tree2.get(&mut m2, &mut eng2, TID, b"torn"),
                None,
                "seed {seed}"
            );
            assert_eq!(tree2.len(&mut m2, TID), 1, "seed {seed}");
        }
    }
}
