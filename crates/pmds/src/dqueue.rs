//! Durable multi-producer single-consumer queue with detectable
//! recovery.
//!
//! WHISPER's server applications move work between threads through
//! shared persistent state — the paper's Section 5.2 measures how such
//! sharing turns into *cross-thread epoch dependencies*: "a thread's
//! epoch depends on another thread's epoch if it reads or writes a
//! cache line modified by the other epoch". This queue is the
//! repository's concentrated source of that pattern: every producer
//! links onto the same chain tail and bumps the same allocation
//! cursor, so enqueues from different scheduler workers form exactly
//! the fence-release → store-acquire chains Figure 5 counts.
//!
//! The design is a *detectable* durable queue in the Friedman et
//! al. / memento style: each operation writes a per-thread announce
//! line before touching the structure, so recovery can determine for
//! every in-flight operation whether it completed, and either roll it
//! forward or discard it — the caller learns which.
//!
//! Crash-consistency discipline (all line-granular, no transaction
//! engine):
//!
//! 1. *Prepare epoch* — write the node (a single 64-byte line: next,
//!    sequence tag, payload), bump the durable allocation cursor, and
//!    publish the announce (`Pending`, node address, sequence); flush
//!    and `dfence`.
//! 2. *Link epoch* — a single 8-byte store hooks the node onto the
//!    chain (predecessor's `next`, or the header's `head` when empty);
//!    flush and `dfence`.
//! 3. *Retire epoch* — announce flips to `Done`; flush and `dfence`.
//!
//! A crash between 1 and 2 leaves the node unreachable (leaked, never
//! half-visible); recovery sees a valid `Pending` announce and rolls
//! the operation forward. A crash between 2 and 3 leaves the node
//! linked; recovery detects reachability and reports the operation
//! completed.

use crate::DsError;
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const MAGIC: u64 = 0x5044_5155_4555_4531; // "PDQUEUE1"

// Header line layout (offsets within the first 64-byte line).
const H_MAGIC: u64 = 0;
const H_HEAD: u64 = 8;
const H_CURSOR: u64 = 16;
const H_PRODUCERS: u64 = 24;
const H_CAPACITY: u64 = 32;

// Announce line layout (one 64-byte line per slot; slot `producers`
// is the consumer's).
const A_STATE: u64 = 0;
const A_NODE: u64 = 8;
const A_SEQ: u64 = 16;

// States: 0 is idle (the formatted region is zeroed).
const STATE_PENDING: u64 = 1;
const STATE_DONE: u64 = 2;

// Node line layout (a node is exactly one 64-byte line).
const N_NEXT: u64 = 0;
const N_SEQ: u64 = 8;
const N_LEN: u64 = 16;
const N_PAYLOAD: u64 = 20;

/// Largest payload an inline single-line node can carry.
pub const DQUEUE_MAX_PAYLOAD: usize = 44;

/// What recovery decided about one in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOpFate {
    /// The operation had fully taken effect; recovery marked it done.
    Completed,
    /// The prepared node was durable but unlinked; recovery linked it.
    RolledForward,
    /// The preparation itself was torn; recovery discarded it.
    Discarded,
}

/// Recovery report: one entry per announce slot that held an
/// in-flight operation, with the sequence number the application
/// tagged it with — the *detectability* interface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueRecovery {
    /// `(slot, sequence, fate)` for every non-idle announce found.
    pub ops: Vec<(u32, u64, QueueOpFate)>,
}

/// A durable MPSC queue: `producers` enqueue slots, one dequeue slot,
/// single-line nodes carved from a bump arena inside the region.
///
/// The `tail_hint` is volatile by design: after a crash it is rebuilt
/// by walking the chain, so no durable tail pointer can ever disagree
/// with the links (the classic durable-queue tail problem).
#[derive(Debug)]
pub struct DurableQueue {
    head: Addr,
    producers: u64,
    capacity: u64,
    tail_hint: Addr,
}

impl DurableQueue {
    /// Bytes of PM needed for a queue with `producers` enqueue slots
    /// and room for `capacity` nodes.
    pub fn region_bytes(producers: u32, capacity: u64) -> u64 {
        // header + producer announces + consumer announce + arena
        64 + (u64::from(producers) + 1) * 64 + capacity * 64
    }

    fn announce_addr(&self, slot: u32) -> Addr {
        self.head + 64 + u64::from(slot) * 64
    }

    fn arena(&self) -> Addr {
        self.head + 64 + (self.producers + 1) * 64
    }

    /// Validate a producer/consumer slot index.
    fn check_slot(&self, slot: u32, slots: u64) -> Result<(), DsError> {
        if u64::from(slot) < slots {
            Ok(())
        } else {
            Err(DsError::BadSlot {
                slot,
                slots: slots as u32,
            })
        }
    }

    /// Create a fresh queue in `region` (never-written, zeroed PM).
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` for uniformity with
    /// the other structures.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small or `producers` is zero.
    pub fn create(
        m: &mut Machine,
        tid: Tid,
        region: AddrRange,
        producers: u32,
        capacity: u64,
    ) -> Result<DurableQueue, DsError> {
        assert!(producers > 0, "need at least one producer slot");
        assert!(
            region.len >= Self::region_bytes(producers, capacity),
            "region too small for {producers} producers / {capacity} nodes"
        );
        let mut w = PmWriter::new(tid);
        w.write_u64(m, region.base + H_HEAD, 0, Category::AppMeta);
        w.write_u64(m, region.base + H_CURSOR, 0, Category::AllocMeta);
        w.write_u64(
            m,
            region.base + H_PRODUCERS,
            u64::from(producers),
            Category::AppMeta,
        );
        w.write_u64(m, region.base + H_CAPACITY, capacity, Category::AppMeta);
        // Magic last, same line: the header line becomes valid
        // atomically at the fence.
        w.write_u64(m, region.base + H_MAGIC, MAGIC, Category::AppMeta);
        w.durability_fence(m);
        Ok(DurableQueue {
            head: region.base,
            producers: u64::from(producers),
            capacity,
            tail_hint: 0,
        })
    }

    /// Re-attach after a crash. Call [`DurableQueue::recover`] next to
    /// resolve in-flight operations before using the queue.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `head` does not hold a queue.
    pub fn open(m: &mut Machine, tid: Tid, head: Addr) -> Result<DurableQueue, DsError> {
        if m.load_u64(tid, head + H_MAGIC) != MAGIC {
            return Err(DsError::BadHeader { addr: head });
        }
        let producers = m.load_u64(tid, head + H_PRODUCERS);
        let capacity = m.load_u64(tid, head + H_CAPACITY);
        Ok(DurableQueue {
            head,
            producers,
            capacity,
            tail_hint: 0,
        })
    }

    /// Address of the last chain node, walking from `from` (0 = start
    /// at the head pointer). Returns 0 for an empty queue.
    fn find_tail(&self, m: &mut Machine, tid: Tid, from: Addr) -> Addr {
        let mut node = if from != 0 {
            from
        } else {
            m.load_u64(tid, self.head + H_HEAD)
        };
        if node == 0 {
            return 0;
        }
        loop {
            let next = m.load_u64(tid, node + N_NEXT);
            if next == 0 {
                return node;
            }
            node = next;
        }
    }

    /// Enqueue `payload` from producer `slot`, tagged with the
    /// application-chosen `seq` (must be non-zero — it doubles as the
    /// node's torn-write detector).
    ///
    /// # Errors
    ///
    /// [`DsError::BadSlot`] for an out-of-range producer,
    /// [`DsError::TooLarge`] for an oversized payload,
    /// [`DsError::Full`] when the node arena is exhausted.
    pub fn enqueue(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        slot: u32,
        seq: u64,
        payload: &[u8],
    ) -> Result<(), DsError> {
        self.check_slot(slot, self.producers)?;
        assert!(seq != 0, "sequence tags start at 1");
        if payload.len() > DQUEUE_MAX_PAYLOAD {
            return Err(DsError::TooLarge { len: payload.len() });
        }
        let cursor = m.load_u64(tid, self.head + H_CURSOR);
        if cursor >= self.capacity {
            return Err(DsError::Full {
                capacity: self.capacity,
            });
        }
        let node = self.arena() + cursor * 64;
        let mut w = PmWriter::new(tid);

        // Prepare epoch: node line + cursor bump + announce, one fence.
        let mut line = Vec::with_capacity(N_PAYLOAD as usize + payload.len());
        line.extend_from_slice(&0u64.to_le_bytes()); // next
        line.extend_from_slice(&seq.to_le_bytes());
        line.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        line.extend_from_slice(payload);
        w.write(m, node, &line, Category::UserData);
        w.write_u64(m, self.head + H_CURSOR, cursor + 1, Category::AllocMeta);
        let ann = self.announce_addr(slot);
        let mut a = Vec::with_capacity(24);
        a.extend_from_slice(&STATE_PENDING.to_le_bytes());
        a.extend_from_slice(&node.to_le_bytes());
        a.extend_from_slice(&seq.to_le_bytes());
        w.write(m, ann, &a, Category::AppMeta);
        w.durability_fence(m);

        // Link epoch: one pointer store makes the node reachable.
        let tail = self.find_tail(m, tid, self.tail_hint);
        let link = if tail == 0 {
            self.head + H_HEAD
        } else {
            tail + N_NEXT
        };
        w.write_u64(m, link, node, Category::UserData);
        w.durability_fence(m);
        self.tail_hint = node;

        // Retire epoch.
        w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
        w.durability_fence(m);
        Ok(())
    }

    /// Dequeue the oldest payload (single consumer; uses the dedicated
    /// consumer announce slot). Returns `(seq, payload)`.
    ///
    /// # Errors
    ///
    /// Currently infallible beyond the `Option`; kept as `Result` for
    /// interface uniformity.
    #[allow(clippy::type_complexity)]
    pub fn dequeue(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        seq: u64,
    ) -> Result<Option<(u64, Vec<u8>)>, DsError> {
        let node = m.load_u64(tid, self.head + H_HEAD);
        if node == 0 {
            return Ok(None);
        }
        let node_seq = m.load_u64(tid, node + N_SEQ);
        let len = m.load_u32(tid, node + N_LEN) as usize;
        let payload = m.load_vec(tid, node + N_PAYLOAD, len);
        let next = m.load_u64(tid, node + N_NEXT);

        let ann = self.announce_addr(self.producers as u32);
        let mut w = PmWriter::new(tid);
        let mut a = Vec::with_capacity(24);
        a.extend_from_slice(&STATE_PENDING.to_le_bytes());
        a.extend_from_slice(&node.to_le_bytes());
        a.extend_from_slice(&seq.to_le_bytes());
        w.write(m, ann, &a, Category::AppMeta);
        w.durability_fence(m);

        w.write_u64(m, self.head + H_HEAD, next, Category::UserData);
        w.durability_fence(m);
        if self.tail_hint == node {
            self.tail_hint = 0;
        }

        w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
        w.durability_fence(m);
        Ok(Some((node_seq, payload)))
    }

    /// Resolve every in-flight operation after a crash: roll forward
    /// prepared-but-unlinked enqueues, detect completed operations,
    /// discard torn preparations, and repair the allocation cursor.
    /// Idempotent.
    pub fn recover(&mut self, m: &mut Machine, tid: Tid) -> QueueRecovery {
        let mut report = QueueRecovery::default();
        let mut w = PmWriter::new(tid);

        // Chain facts first: reachable set and true tail.
        let mut reachable = Vec::new();
        let mut node = m.load_u64(tid, self.head + H_HEAD);
        while node != 0 {
            reachable.push(node);
            node = m.load_u64(tid, node + N_NEXT);
        }
        self.tail_hint = reachable.last().copied().unwrap_or(0);

        // The cursor must never re-issue a line that holds a reachable
        // node (its bump may have been torn away while a link
        // survived an earlier fence — impossible under our epoch
        // order, but recovery re-derives rather than trusts).
        let arena = self.arena();
        let mut cursor = m.load_u64(tid, self.head + H_CURSOR);
        for &n in &reachable {
            cursor = cursor.max((n - arena) / 64 + 1);
        }

        // Producer announces: roll forward or discard.
        for slot in 0..self.producers as u32 {
            let ann = self.announce_addr(slot);
            if m.load_u64(tid, ann + A_STATE) != STATE_PENDING {
                continue;
            }
            let node = m.load_u64(tid, ann + A_NODE);
            let seq = m.load_u64(tid, ann + A_SEQ);
            let fate = if reachable.contains(&node) {
                QueueOpFate::Completed
            } else if seq != 0 && node != 0 && m.load_u64(tid, node + N_SEQ) == seq {
                // Durable prepared node, never linked: link it now.
                w.write_u64(m, node + N_NEXT, 0, Category::UserData);
                let link = if self.tail_hint == 0 {
                    self.head + H_HEAD
                } else {
                    self.tail_hint + N_NEXT
                };
                w.write_u64(m, link, node, Category::UserData);
                w.durability_fence(m);
                self.tail_hint = node;
                cursor = cursor.max((node - arena) / 64 + 1);
                QueueOpFate::RolledForward
            } else {
                QueueOpFate::Discarded
            };
            w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
            report.ops.push((slot, seq, fate));
        }

        // Consumer announce: the pop either moved the head or it
        // didn't; nothing to roll forward.
        let ann = self.announce_addr(self.producers as u32);
        if m.load_u64(tid, ann + A_STATE) == STATE_PENDING {
            let node = m.load_u64(tid, ann + A_NODE);
            let seq = m.load_u64(tid, ann + A_SEQ);
            let fate = if m.load_u64(tid, self.head + H_HEAD) == node {
                QueueOpFate::Discarded
            } else {
                QueueOpFate::Completed
            };
            w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
            report.ops.push((self.producers as u32, seq, fate));
        }

        w.write_u64(m, self.head + H_CURSOR, cursor, Category::AllocMeta);
        w.durability_fence(m);
        report
    }

    /// Non-destructive scan of `(seq, payload)` from oldest to newest.
    pub fn iter_snapshot(&self, m: &mut Machine, tid: Tid) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut node = m.load_u64(tid, self.head + H_HEAD);
        while node != 0 {
            let seq = m.load_u64(tid, node + N_SEQ);
            let len = m.load_u32(tid, node + N_LEN) as usize;
            out.push((seq, m.load_vec(tid, node + N_PAYLOAD, len)));
            node = m.load_u64(tid, node + N_NEXT);
        }
        out
    }

    /// Queue length (walks the chain).
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        let mut n = 0;
        let mut node = m.load_u64(tid, self.head + H_HEAD);
        while node != 0 {
            n += 1;
            node = m.load_u64(tid, node + N_NEXT);
        }
        n
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        m.load_u64(tid, self.head + H_HEAD) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};

    const TID: Tid = Tid(0);

    fn setup() -> (Machine, DurableQueue, Addr) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let base = m.config().map.pm.base;
        let region = AddrRange::new(base, DurableQueue::region_bytes(4, 256));
        let q = DurableQueue::create(&mut m, TID, region, 4, 256).unwrap();
        (m, q, base)
    }

    #[test]
    fn fifo_round_trip_across_producers() {
        let (mut m, mut q, _) = setup();
        for (i, slot) in [(1u64, 0u32), (2, 1), (3, 2), (4, 3), (5, 0)] {
            q.enqueue(&mut m, TID, slot, i, &[i as u8; 4]).unwrap();
        }
        assert_eq!(q.len(&mut m, TID), 5);
        for i in 1..=5u64 {
            let (seq, payload) = q.dequeue(&mut m, TID, 100 + i).unwrap().unwrap();
            assert_eq!(seq, i);
            assert_eq!(payload, vec![i as u8; 4]);
        }
        assert!(q.is_empty(&mut m, TID));
        assert_eq!(q.dequeue(&mut m, TID, 999).unwrap(), None);
    }

    #[test]
    fn rejects_bad_slot_oversize_and_overflow() {
        let (mut m, mut q, _) = setup();
        assert!(matches!(
            q.enqueue(&mut m, TID, 4, 1, b"x"),
            Err(DsError::BadSlot { slot: 4, slots: 4 })
        ));
        let big = [0u8; DQUEUE_MAX_PAYLOAD + 1];
        assert!(matches!(
            q.enqueue(&mut m, TID, 0, 1, &big),
            Err(DsError::TooLarge { .. })
        ));
        let mut m2 = Machine::new(MachineConfig::asplos17());
        let base = m2.config().map.pm.base;
        let region = AddrRange::new(base, DurableQueue::region_bytes(1, 2));
        let mut q2 = DurableQueue::create(&mut m2, TID, region, 1, 2).unwrap();
        q2.enqueue(&mut m2, TID, 0, 1, b"a").unwrap();
        q2.enqueue(&mut m2, TID, 0, 2, b"b").unwrap();
        assert!(matches!(
            q2.enqueue(&mut m2, TID, 0, 3, b"c"),
            Err(DsError::Full { capacity: 2 })
        ));
    }

    #[test]
    fn open_rejects_garbage_and_reattaches() {
        let (mut m, mut q, base) = setup();
        q.enqueue(&mut m, TID, 0, 7, b"keep").unwrap();
        assert!(matches!(
            DurableQueue::open(&mut m, TID, base + (1 << 20)),
            Err(DsError::BadHeader { .. })
        ));
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut q2 = DurableQueue::open(&mut m2, TID, base).unwrap();
        let report = q2.recover(&mut m2, TID);
        assert!(report.ops.is_empty(), "no in-flight ops to resolve");
        assert_eq!(q2.iter_snapshot(&mut m2, TID), vec![(7, b"keep".to_vec())]);
    }

    /// Crash at every PM event of an in-flight enqueue, under the full
    /// crash-spec lattice: after recovery the committed prefix
    /// survives and the in-flight op is either wholly present or
    /// wholly absent — and the recovery report says which.
    #[test]
    fn crash_at_every_point_of_an_enqueue_is_detectable() {
        use memsim::{CrashCounter, CrashPlan};
        let mut rolled = 0u32;
        let mut discarded = 0u32;
        let (mut m, mut q, base) = setup();
        q.enqueue(&mut m, TID, 0, 1, b"first").unwrap();
        m.set_crash_plan(CrashPlan::at_points(
            CrashCounter::PmEvents,
            (1..=24).collect(),
        ));
        q.enqueue(&mut m, TID, 1, 2, b"second").unwrap();
        let states = m.take_crash_states();
        assert!(!states.is_empty(), "plan captured nothing");
        for state in &states {
            for spec in std::iter::once(CrashSpec::DropVolatile)
                .chain(std::iter::once(CrashSpec::PersistAll))
                .chain((1..=8).map(|seed| CrashSpec::Adversarial { seed }))
            {
                let img = state.materialize(spec);
                let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
                let mut q2 = DurableQueue::open(&mut m2, TID, base).unwrap();
                let report = q2.recover(&mut m2, TID);
                let snap = q2.iter_snapshot(&mut m2, TID);
                // The fully-fenced first element must always survive.
                assert!(
                    snap.first() == Some(&(1, b"first".to_vec())),
                    "{spec:?} at {}: committed op lost: {snap:?}",
                    state.at()
                );
                for (_, _, fate) in &report.ops {
                    match fate {
                        QueueOpFate::RolledForward => rolled += 1,
                        QueueOpFate::Discarded => discarded += 1,
                        QueueOpFate::Completed => {}
                    }
                }
                // Whatever recovery decided, the queue is internally
                // consistent: sequences unique, structure usable.
                let mut seqs: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
                seqs.sort_unstable();
                seqs.dedup();
                assert_eq!(seqs.len(), snap.len(), "duplicate nodes: {snap:?}");
                q2.enqueue(&mut m2, TID, 0, 99, b"post").unwrap();
                assert_eq!(
                    q2.iter_snapshot(&mut m2, TID).last().unwrap(),
                    &(99, b"post".to_vec())
                );
            }
        }
        // The sweep must actually exercise both recovery paths.
        assert!(rolled > 0, "no prepared-but-unlinked op rolled forward");
        assert!(discarded > 0, "no torn preparation discarded");
    }

    #[test]
    fn crash_mid_dequeue_pops_at_most_once() {
        use memsim::{CrashCounter, CrashPlan};
        let (mut m, mut q, base) = setup();
        q.enqueue(&mut m, TID, 0, 1, b"a").unwrap();
        q.enqueue(&mut m, TID, 0, 2, b"b").unwrap();
        m.set_crash_plan(CrashPlan::at_points(
            CrashCounter::PmEvents,
            (1..=12).collect(),
        ));
        q.dequeue(&mut m, TID, 50).unwrap();
        for state in m.take_crash_states() {
            for seed in 0..8u64 {
                let img = state.materialize(CrashSpec::Adversarial { seed });
                let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
                let mut q2 = DurableQueue::open(&mut m2, TID, base).unwrap();
                q2.recover(&mut m2, TID);
                let snap = q2.iter_snapshot(&mut m2, TID);
                // Element 2 must survive; element 1 is at the pop
                // boundary (gone once the head move persisted,
                // present otherwise).
                assert!(
                    snap == vec![(2, b"b".to_vec())]
                        || snap == vec![(1, b"a".to_vec()), (2, b"b".to_vec())],
                    "seed {seed} at {}: {snap:?}",
                    state.at()
                );
            }
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut m, mut q, base) = setup();
        q.enqueue(&mut m, TID, 0, 1, b"x").unwrap();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut q2 = DurableQueue::open(&mut m2, TID, base).unwrap();
        q2.recover(&mut m2, TID);
        let again = q2.recover(&mut m2, TID);
        assert!(again.ops.is_empty());
        assert_eq!(q2.len(&mut m2, TID), 1);
    }
}
