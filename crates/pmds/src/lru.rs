//! Persistent doubly-linked LRU list.

use crate::DsError;
use memsim::Machine;
use pmalloc::PmAllocator;
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x504c_5255_4c49_5354; // "PLRULIST"
                                          // Node: prev u64, next u64, payload u64
const NODE_BYTES: u64 = 24;

/// A persistent doubly-linked list maintained in LRU order, as used by
/// the Mnemosyne-modified Memcached, whose object cache pairs "a hash
/// table and an LRU replacement policy" (Section 3.2.2) — with the
/// table and its bookkeeping moved into PM.
///
/// Each node carries an opaque `u64` payload (typically the PM address
/// of the cached item). The header holds `head` (most recent), `tail`
/// (least recent) and `count`.
#[derive(Debug, Clone, Copy)]
pub struct PLruList {
    base: Addr,
}

impl PLruList {
    /// Create a fresh list in `region`, inside an open transaction.
    ///
    /// # Errors
    ///
    /// Engine errors.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one header line.
    pub fn create<E: TxMem>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        region: AddrRange,
    ) -> Result<PLruList, DsError> {
        assert!(region.len >= 64, "LRU region too small");
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, 0, Category::AppMeta)?; // head
        eng.tx_write_u64(m, tid, region.base + 16, 0, Category::AppMeta)?; // tail
        eng.tx_write_u64(m, tid, region.base + 24, 0, Category::AppMeta)?; // count
        Ok(PLruList { base: region.base })
    }

    /// Re-attach after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `base` does not hold a list header.
    pub fn open(m: &mut Machine, tid: Tid, base: Addr) -> Result<PLruList, DsError> {
        if m.load_u64(tid, base) != MAGIC {
            return Err(DsError::BadHeader { addr: base });
        }
        Ok(PLruList { base })
    }

    /// Number of nodes.
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        m.load_u64(tid, self.base + 24)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        self.len(m, tid) == 0
    }

    fn set_count<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        delta: i64,
    ) -> Result<(), DsError> {
        let n = eng.tx_read_u64(m, tid, self.base + 24);
        eng.tx_write_u64(
            m,
            tid,
            self.base + 24,
            n.checked_add_signed(delta).expect("count in range"),
            Category::AppMeta,
        )?;
        Ok(())
    }

    /// Insert `payload` at the front (most-recently-used). Returns the
    /// node address for later `touch`/`remove`.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn push_front<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        payload: u64,
    ) -> Result<Addr, DsError> {
        let mut w = memsim::PmWriter::new(tid);
        let node = alloc.alloc(m, &mut w, NODE_BYTES)?;
        let head = eng.tx_read_u64(m, tid, self.base + 8);
        eng.tx_write_u64(m, tid, node, 0, Category::UserData)?; // prev
        eng.tx_write_u64(m, tid, node + 8, head, Category::UserData)?; // next
        eng.tx_write_u64(m, tid, node + 16, payload, Category::UserData)?;
        if head != 0 {
            eng.tx_write_u64(m, tid, head, node, Category::UserData)?; // head.prev
        } else {
            eng.tx_write_u64(m, tid, self.base + 16, node, Category::AppMeta)?; // tail
        }
        eng.tx_write_u64(m, tid, self.base + 8, node, Category::AppMeta)?; // head
        self.set_count(m, eng, tid, 1)?;
        Ok(node)
    }

    fn unlink<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        node: Addr,
    ) -> Result<u64, DsError> {
        let prev = eng.tx_read_u64(m, tid, node);
        let next = eng.tx_read_u64(m, tid, node + 8);
        let payload = eng.tx_read_u64(m, tid, node + 16);
        if prev != 0 {
            eng.tx_write_u64(m, tid, prev + 8, next, Category::UserData)?;
        } else {
            eng.tx_write_u64(m, tid, self.base + 8, next, Category::AppMeta)?;
        }
        if next != 0 {
            eng.tx_write_u64(m, tid, next, prev, Category::UserData)?;
        } else {
            eng.tx_write_u64(m, tid, self.base + 16, prev, Category::AppMeta)?;
        }
        Ok(payload)
    }

    /// Move an existing node to the front (a cache hit).
    ///
    /// # Errors
    ///
    /// Engine errors.
    pub fn touch<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        node: Addr,
    ) -> Result<(), DsError> {
        let head = eng.tx_read_u64(m, tid, self.base + 8);
        if head == node {
            return Ok(());
        }
        self.unlink(m, eng, tid, node)?;
        let head = eng.tx_read_u64(m, tid, self.base + 8);
        eng.tx_write_u64(m, tid, node, 0, Category::UserData)?;
        eng.tx_write_u64(m, tid, node + 8, head, Category::UserData)?;
        if head != 0 {
            eng.tx_write_u64(m, tid, head, node, Category::UserData)?;
        } else {
            eng.tx_write_u64(m, tid, self.base + 16, node, Category::AppMeta)?;
        }
        eng.tx_write_u64(m, tid, self.base + 8, node, Category::AppMeta)?;
        Ok(())
    }

    /// Evict the least-recently-used node; returns its payload.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn pop_back<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
    ) -> Result<Option<u64>, DsError> {
        let tail = eng.tx_read_u64(m, tid, self.base + 16);
        if tail == 0 {
            return Ok(None);
        }
        let payload = self.unlink(m, eng, tid, tail)?;
        self.set_count(m, eng, tid, -1)?;
        let mut w = memsim::PmWriter::new(tid);
        alloc.free(m, &mut w, tail)?;
        Ok(Some(payload))
    }

    /// Remove a specific node; returns its payload.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn remove<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        node: Addr,
    ) -> Result<u64, DsError> {
        let payload = self.unlink(m, eng, tid, node)?;
        self.set_count(m, eng, tid, -1)?;
        let mut w = memsim::PmWriter::new(tid);
        alloc.free(m, &mut w, node)?;
        Ok(payload)
    }

    /// Payloads from most- to least-recently-used (non-transactional).
    pub fn payloads(&self, m: &mut Machine, tid: Tid) -> Vec<u64> {
        let mut out = Vec::new();
        let mut node = m.load_u64(tid, self.base + 8);
        while node != 0 {
            out.push(m.load_u64(tid, node + 16));
            node = m.load_u64(tid, node + 8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmalloc::SlabBitmapAlloc;
    use pmtx::UndoTxEngine;

    const TID: Tid = Tid(0);

    struct Fix {
        m: Machine,
        eng: UndoTxEngine,
        alloc: SlabBitmapAlloc,
        lru: PLruList,
    }

    fn setup() -> Fix {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let mut eng = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 1 << 20), 4);
        let mut w = memsim::PmWriter::new(TID);
        let alloc =
            SlabBitmapAlloc::format(&mut m, &mut w, AddrRange::new(pm.base + (1 << 20), 4 << 20));
        eng.begin(&mut m, TID).unwrap();
        let lru = PLruList::create(
            &mut m,
            &mut eng,
            TID,
            AddrRange::new(pm.base + (6 << 20), 64),
        )
        .unwrap();
        eng.commit(&mut m, TID).unwrap();
        Fix { m, eng, alloc, lru }
    }

    fn tx<T>(fx: &mut Fix, f: impl FnOnce(&mut Fix) -> T) -> T {
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let r = f(fx);
        fx.eng.commit(&mut fx.m, TID).unwrap();
        r
    }

    #[test]
    fn push_order_is_mru_first() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            for p in [1u64, 2, 3] {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap();
            }
        });
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![3, 2, 1]);
        assert_eq!(fx.lru.len(&mut fx.m, TID), 3);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut fx = setup();
        let nodes = tx(&mut fx, |fx| {
            [1u64, 2, 3].map(|p| {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap()
            })
        });
        tx(&mut fx, |fx| {
            fx.lru.touch(&mut fx.m, &mut fx.eng, TID, nodes[0]).unwrap(); // payload 1
        });
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![1, 3, 2]);
    }

    #[test]
    fn touch_of_head_is_noop() {
        let mut fx = setup();
        let n = tx(&mut fx, |fx| {
            fx.lru
                .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 9)
                .unwrap()
        });
        tx(&mut fx, |fx| {
            fx.lru.touch(&mut fx.m, &mut fx.eng, TID, n).unwrap();
        });
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![9]);
    }

    #[test]
    fn pop_back_evicts_lru() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            for p in [1u64, 2, 3] {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap();
            }
        });
        let evicted = tx(&mut fx, |fx| {
            fx.lru
                .pop_back(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc)
                .unwrap()
        });
        assert_eq!(evicted, Some(1));
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![3, 2]);
        assert_eq!(fx.lru.len(&mut fx.m, TID), 2);
    }

    #[test]
    fn pop_back_empty_is_none() {
        let mut fx = setup();
        let evicted = tx(&mut fx, |fx| {
            fx.lru
                .pop_back(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc)
                .unwrap()
        });
        assert_eq!(evicted, None);
    }

    #[test]
    fn remove_middle_node() {
        let mut fx = setup();
        let nodes = tx(&mut fx, |fx| {
            [1u64, 2, 3].map(|p| {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap()
            })
        });
        let payload = tx(&mut fx, |fx| {
            fx.lru
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, nodes[1])
                .unwrap()
        });
        assert_eq!(payload, 2);
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![3, 1]);
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            for p in 0..5u64 {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap();
            }
            while fx
                .lru
                .pop_back(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc)
                .unwrap()
                .is_some()
            {}
        });
        assert!(fx.lru.is_empty(&mut fx.m, TID));
        tx(&mut fx, |fx| {
            fx.lru
                .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 42)
                .unwrap();
        });
        assert_eq!(fx.lru.payloads(&mut fx.m, TID), vec![42]);
    }

    #[test]
    fn survives_crash() {
        let mut fx = setup();
        let base = fx.lru.base;
        tx(&mut fx, |fx| {
            for p in [10u64, 20] {
                fx.lru
                    .push_front(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, p)
                    .unwrap();
            }
        });
        let img = fx.m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let pm = m2.config().map.pm;
        let _ = UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 1 << 20), 4);
        let lru2 = PLruList::open(&mut m2, TID, base).unwrap();
        assert_eq!(lru2.payloads(&mut m2, TID), vec![20, 10]);
    }
}
