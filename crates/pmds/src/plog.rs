//! Persistent append-only log.

use crate::DsError;
use memsim::Machine;
use pmem::AddrRange;
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x504c_4f47_2121_2121; // "PLOG!!!!"

/// A bounded persistent append log in a caller-provided region.
///
/// Echo's clients "submit updates to key-value pairs, which are stored
/// in a persistent log" before the master folds them into the KVS
/// (Section 3.2.1); this is that structure. It is also the
/// "append-mostly log" the paper gives as an example of a structure
/// that does not need full transactional atomicity (Section 2) — a
/// record becomes visible only when the persistent `len` field is
/// advanced past it, so a crash mid-append loses at most the record
/// being written.
///
/// Layout: header line (`magic`, `len`) then packed records
/// `{len u32, data…}` 8-byte aligned.
#[derive(Debug, Clone, Copy)]
pub struct PLog {
    region: AddrRange,
}

impl PLog {
    /// Create a fresh log in `region`, inside an open transaction.
    ///
    /// # Errors
    ///
    /// Engine errors.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one header line.
    pub fn create<E: TxMem>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        region: AddrRange,
    ) -> Result<PLog, DsError> {
        assert!(region.len >= 128, "log region too small");
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, 0, Category::AppMeta)?;
        Ok(PLog { region })
    }

    /// Re-attach after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `region` does not hold a log.
    pub fn open(m: &mut Machine, tid: Tid, region: AddrRange) -> Result<PLog, DsError> {
        if m.load_u64(tid, region.base) != MAGIC {
            return Err(DsError::BadHeader { addr: region.base });
        }
        Ok(PLog { region })
    }

    /// Current payload bytes used (not counting the header).
    pub fn used(&self, m: &mut Machine, tid: Tid) -> u64 {
        m.load_u64(tid, self.region.base + 8)
    }

    /// Append a record. Returns [`DsError::TooLarge`] when the log is
    /// full (the caller decides whether to truncate or fail).
    ///
    /// # Errors
    ///
    /// [`DsError::TooLarge`] when full; engine errors otherwise.
    pub fn append<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        data: &[u8],
    ) -> Result<(), DsError> {
        // Read through the engine: under redo logging the length
        // updated earlier in this transaction is still buffered.
        let used = eng.tx_read_u64(m, tid, self.region.base + 8);
        let rec = 4 + data.len() as u64;
        let rec_padded = rec.div_ceil(8) * 8;
        if 64 + used + rec_padded > self.region.len {
            return Err(DsError::TooLarge { len: data.len() });
        }
        let at = self.region.base + 64 + used;
        eng.tx_write_u32(m, tid, at, data.len() as u32, Category::UserData)?;
        eng.tx_write(m, tid, at + 4, data, Category::UserData)?;
        // Publishing the new length is what commits the record.
        eng.tx_write_u64(
            m,
            tid,
            self.region.base + 8,
            used + rec_padded,
            Category::AppMeta,
        )?;
        Ok(())
    }

    /// Read every record (non-transactionally).
    pub fn records(&self, m: &mut Machine, tid: Tid) -> Vec<Vec<u8>> {
        let used = self.used(m, tid);
        let mut out = Vec::new();
        let mut off = 0u64;
        while off < used {
            let at = self.region.base + 64 + off;
            let len = m.load_u32(tid, at) as u64;
            out.push(m.load_vec(tid, at + 4, len as usize));
            off += (4 + len).div_ceil(8) * 8;
        }
        out
    }

    /// Reset the log to empty (a single persistent length write).
    ///
    /// # Errors
    ///
    /// Engine errors.
    pub fn truncate<E: TxMem>(
        &self,
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
    ) -> Result<(), DsError> {
        eng.tx_write_u64(m, tid, self.region.base + 8, 0, Category::AppMeta)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashSpec, MachineConfig};
    use pmtx::RedoTxEngine;

    const TID: Tid = Tid(0);

    fn setup() -> (Machine, RedoTxEngine, PLog) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let logs = AddrRange::new(pm.base, 1 << 20);
        let mut eng = RedoTxEngine::format(&mut m, logs, 4);
        let region = AddrRange::new(pm.base + (1 << 20), 4096);
        eng.begin(&mut m, TID).unwrap();
        let plog = PLog::create(&mut m, &mut eng, TID, region).unwrap();
        eng.commit(&mut m, TID).unwrap();
        (m, eng, plog)
    }

    #[test]
    fn append_and_read_back() {
        let (mut m, mut eng, plog) = setup();
        eng.begin(&mut m, TID).unwrap();
        plog.append(&mut m, &mut eng, TID, b"first").unwrap();
        plog.append(&mut m, &mut eng, TID, b"second-record")
            .unwrap();
        eng.commit(&mut m, TID).unwrap();
        assert_eq!(
            plog.records(&mut m, TID),
            vec![b"first".to_vec(), b"second-record".to_vec()]
        );
    }

    #[test]
    fn truncate_empties() {
        let (mut m, mut eng, plog) = setup();
        eng.begin(&mut m, TID).unwrap();
        plog.append(&mut m, &mut eng, TID, b"x").unwrap();
        plog.truncate(&mut m, &mut eng, TID).unwrap();
        eng.commit(&mut m, TID).unwrap();
        assert!(plog.records(&mut m, TID).is_empty());
        assert_eq!(plog.used(&mut m, TID), 0);
    }

    #[test]
    fn full_log_reports_too_large() {
        let (mut m, mut eng, plog) = setup();
        eng.begin(&mut m, TID).unwrap();
        let mut appended = 0;
        loop {
            match plog.append(&mut m, &mut eng, TID, &[0u8; 200]) {
                Ok(()) => appended += 1,
                Err(DsError::TooLarge { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        eng.commit(&mut m, TID).unwrap();
        assert!((10..30).contains(&appended));
    }

    #[test]
    fn committed_records_survive_crash() {
        let (mut m, mut eng, plog) = setup();
        let region = plog.region;
        eng.begin(&mut m, TID).unwrap();
        plog.append(&mut m, &mut eng, TID, b"durable").unwrap();
        eng.commit(&mut m, TID).unwrap();
        // Uncommitted append:
        eng.begin(&mut m, TID).unwrap();
        plog.append(&mut m, &mut eng, TID, b"lost").unwrap();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let pm = m2.config().map.pm;
        let _ = RedoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 1 << 20), 4);
        let plog2 = PLog::open(&mut m2, TID, region).unwrap();
        assert_eq!(plog2.records(&mut m2, TID), vec![b"durable".to_vec()]);
    }

    #[test]
    fn open_rejects_garbage() {
        let (mut m, _eng, _plog) = setup();
        let pm = m.config().map.pm;
        assert!(matches!(
            PLog::open(&mut m, TID, AddrRange::new(pm.base + (2 << 20), 4096)),
            Err(DsError::BadHeader { .. })
        ));
    }
}
