//! Persistent red-black tree.

use crate::DsError;
use memsim::Machine;
use pmalloc::PmAllocator;
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x5052_4254_5245_4521; // "PRBTREE!"
                                          // Node: key u64, val u64, left u64, right u64, parent u64, color u64
const NODE_BYTES: u64 = 48;
const KEY: u64 = 0;
const VAL: u64 = 8;
const LEFT: u64 = 16;
const RIGHT: u64 = 24;
const PARENT: u64 = 32;
const COLOR: u64 = 40;
const RED: u64 = 1;
const BLACK: u64 = 0;
const COUNT_SHARDS: u64 = 4;

/// Bytes of PM a tree header needs (header line + count shards).
pub const RBTREE_REGION_BYTES: u64 = 64 + COUNT_SHARDS * 64;

/// A persistent red-black tree mapping `u64` keys to `u64` values.
///
/// Vacation "implements a key-value store using red black trees and
/// linked lists to track customers and their reservations"
/// (Section 3.2.2); in the WHISPER port those trees live in PM and every
/// mutation runs inside a Mnemosyne transaction. This is a full CLRS
/// red-black tree — insert and delete with rotations and fixup — using
/// a PM-resident sentinel node as `nil`, so crash recovery sees a
/// complete, balanced structure.
#[derive(Debug, Clone, Copy)]
pub struct PRbTree {
    base: Addr,
    nil: Addr,
}

impl PRbTree {
    /// Create a fresh tree in `region` (header; the sentinel comes from
    /// the allocator), inside an open transaction.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one header line.
    pub fn create<E: TxMem, A: PmAllocator>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        region: AddrRange,
    ) -> Result<PRbTree, DsError> {
        assert!(
            region.len >= RBTREE_REGION_BYTES,
            "rb-tree region too small"
        );
        let mut w = memsim::PmWriter::new(tid);
        let nil = alloc.alloc(m, &mut w, NODE_BYTES)?;
        eng.tx_write_u64(m, tid, nil + COLOR, BLACK, Category::UserData)?;
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, nil, Category::AppMeta)?; // root
        eng.tx_write_u64(m, tid, region.base + 24, nil, Category::AppMeta)?; // nil
        Ok(PRbTree {
            base: region.base,
            nil,
        })
    }

    /// Re-attach after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `base` does not hold a tree.
    pub fn open(m: &mut Machine, tid: Tid, base: Addr) -> Result<PRbTree, DsError> {
        if m.load_u64(tid, base) != MAGIC {
            return Err(DsError::BadHeader { addr: base });
        }
        let nil = m.load_u64(tid, base + 24);
        Ok(PRbTree { base, nil })
    }

    /// Number of keys (sums the per-thread count shards).
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        // Shards hold signed deltas (a cross-thread remove drives a
        // shard negative); the non-negative total is exact modulo 2^64.
        (0..COUNT_SHARDS)
            .map(|s| m.load_u64(tid, self.base + 64 + s * 64))
            .fold(0u64, u64::wrapping_add)
    }

    fn bump_count<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        delta: i64,
    ) -> Result<(), DsError> {
        let shard = self.base + 64 + (tid.0 as u64 % COUNT_SHARDS) * 64;
        let n = e.tx_read_u64(m, tid, shard);
        e.tx_write_u64(
            m,
            tid,
            shard,
            n.wrapping_add_signed(delta),
            Category::AppMeta,
        )?;
        Ok(())
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        self.len(m, tid) == 0
    }

    fn g<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid, n: Addr, off: u64) -> u64 {
        e.tx_read_u64(m, tid, n + off)
    }

    fn s<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        n: Addr,
        off: u64,
        v: u64,
    ) -> Result<(), DsError> {
        e.tx_write_u64(m, tid, n + off, v, Category::UserData)?;
        Ok(())
    }

    fn root<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid) -> u64 {
        e.tx_read_u64(m, tid, self.base + 8)
    }

    fn set_root<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        n: u64,
    ) -> Result<(), DsError> {
        e.tx_write_u64(m, tid, self.base + 8, n, Category::UserData)?;
        Ok(())
    }

    fn find_node<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid, key: u64) -> Addr {
        let mut x = self.root(m, e, tid);
        while x != self.nil {
            let k = self.g(m, e, tid, x, KEY);
            if key == k {
                return x;
            }
            x = self.g(m, e, tid, x, if key < k { LEFT } else { RIGHT });
        }
        self.nil
    }

    /// Look up `key`.
    pub fn get<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid, key: u64) -> Option<u64> {
        let n = self.find_node(m, e, tid, key);
        (n != self.nil).then(|| self.g(m, e, tid, n, VAL))
    }

    fn rotate_left<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        x: Addr,
    ) -> Result<(), DsError> {
        let y = self.g(m, e, tid, x, RIGHT);
        let yl = self.g(m, e, tid, y, LEFT);
        self.s(m, e, tid, x, RIGHT, yl)?;
        if yl != self.nil {
            self.s(m, e, tid, yl, PARENT, x)?;
        }
        let xp = self.g(m, e, tid, x, PARENT);
        self.s(m, e, tid, y, PARENT, xp)?;
        if xp == self.nil {
            self.set_root(m, e, tid, y)?;
        } else if self.g(m, e, tid, xp, LEFT) == x {
            self.s(m, e, tid, xp, LEFT, y)?;
        } else {
            self.s(m, e, tid, xp, RIGHT, y)?;
        }
        self.s(m, e, tid, y, LEFT, x)?;
        self.s(m, e, tid, x, PARENT, y)?;
        Ok(())
    }

    fn rotate_right<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        x: Addr,
    ) -> Result<(), DsError> {
        let y = self.g(m, e, tid, x, LEFT);
        let yr = self.g(m, e, tid, y, RIGHT);
        self.s(m, e, tid, x, LEFT, yr)?;
        if yr != self.nil {
            self.s(m, e, tid, yr, PARENT, x)?;
        }
        let xp = self.g(m, e, tid, x, PARENT);
        self.s(m, e, tid, y, PARENT, xp)?;
        if xp == self.nil {
            self.set_root(m, e, tid, y)?;
        } else if self.g(m, e, tid, xp, RIGHT) == x {
            self.s(m, e, tid, xp, RIGHT, y)?;
        } else {
            self.s(m, e, tid, xp, LEFT, y)?;
        }
        self.s(m, e, tid, y, RIGHT, x)?;
        self.s(m, e, tid, x, PARENT, y)?;
        Ok(())
    }

    /// Insert or update. Returns `true` if the key was new.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn insert<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: u64,
        val: u64,
    ) -> Result<bool, DsError> {
        // Search for existing key.
        let existing = self.find_node(m, e, tid, key);
        if existing != self.nil {
            self.s(m, e, tid, existing, VAL, val)?;
            return Ok(false);
        }
        let mut w = memsim::PmWriter::new(tid);
        let z = alloc.alloc(m, &mut w, NODE_BYTES)?;
        self.s(m, e, tid, z, KEY, key)?;
        self.s(m, e, tid, z, VAL, val)?;
        // BST insert.
        let mut y = self.nil;
        let mut x = self.root(m, e, tid);
        while x != self.nil {
            y = x;
            let k = self.g(m, e, tid, x, KEY);
            x = self.g(m, e, tid, x, if key < k { LEFT } else { RIGHT });
        }
        self.s(m, e, tid, z, PARENT, y)?;
        if y == self.nil {
            self.set_root(m, e, tid, z)?;
        } else if key < self.g(m, e, tid, y, KEY) {
            self.s(m, e, tid, y, LEFT, z)?;
        } else {
            self.s(m, e, tid, y, RIGHT, z)?;
        }
        self.s(m, e, tid, z, LEFT, self.nil)?;
        self.s(m, e, tid, z, RIGHT, self.nil)?;
        self.s(m, e, tid, z, COLOR, RED)?;
        self.insert_fixup(m, e, tid, z)?;
        self.bump_count(m, e, tid, 1)?;
        Ok(true)
    }

    fn insert_fixup<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        mut z: Addr,
    ) -> Result<(), DsError> {
        loop {
            let zp0 = self.g(m, e, tid, z, PARENT);
            if self.g(m, e, tid, zp0, COLOR) != RED {
                break;
            }
            let zp = self.g(m, e, tid, z, PARENT);
            let zpp = self.g(m, e, tid, zp, PARENT);
            if zp == self.g(m, e, tid, zpp, LEFT) {
                let y = self.g(m, e, tid, zpp, RIGHT); // uncle
                if self.g(m, e, tid, y, COLOR) == RED {
                    self.s(m, e, tid, zp, COLOR, BLACK)?;
                    self.s(m, e, tid, y, COLOR, BLACK)?;
                    self.s(m, e, tid, zpp, COLOR, RED)?;
                    z = zpp;
                } else {
                    if z == self.g(m, e, tid, zp, RIGHT) {
                        z = zp;
                        self.rotate_left(m, e, tid, z)?;
                    }
                    let zp = self.g(m, e, tid, z, PARENT);
                    let zpp = self.g(m, e, tid, zp, PARENT);
                    self.s(m, e, tid, zp, COLOR, BLACK)?;
                    self.s(m, e, tid, zpp, COLOR, RED)?;
                    self.rotate_right(m, e, tid, zpp)?;
                }
            } else {
                let y = self.g(m, e, tid, zpp, LEFT);
                if self.g(m, e, tid, y, COLOR) == RED {
                    self.s(m, e, tid, zp, COLOR, BLACK)?;
                    self.s(m, e, tid, y, COLOR, BLACK)?;
                    self.s(m, e, tid, zpp, COLOR, RED)?;
                    z = zpp;
                } else {
                    if z == self.g(m, e, tid, zp, LEFT) {
                        z = zp;
                        self.rotate_right(m, e, tid, z)?;
                    }
                    let zp = self.g(m, e, tid, z, PARENT);
                    let zpp = self.g(m, e, tid, zp, PARENT);
                    self.s(m, e, tid, zp, COLOR, BLACK)?;
                    self.s(m, e, tid, zpp, COLOR, RED)?;
                    self.rotate_left(m, e, tid, zpp)?;
                }
            }
        }
        let root = self.root(m, e, tid);
        self.s(m, e, tid, root, COLOR, BLACK)?;
        Ok(())
    }

    fn transplant<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        u: Addr,
        v: Addr,
    ) -> Result<(), DsError> {
        let up = self.g(m, e, tid, u, PARENT);
        if up == self.nil {
            self.set_root(m, e, tid, v)?;
        } else if u == self.g(m, e, tid, up, LEFT) {
            self.s(m, e, tid, up, LEFT, v)?;
        } else {
            self.s(m, e, tid, up, RIGHT, v)?;
        }
        self.s(m, e, tid, v, PARENT, up)?;
        Ok(())
    }

    fn minimum<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid, mut x: Addr) -> Addr {
        loop {
            let l = self.g(m, e, tid, x, LEFT);
            if l == self.nil {
                return x;
            }
            x = l;
        }
    }

    /// Remove `key`; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn remove<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: u64,
    ) -> Result<bool, DsError> {
        let z = self.find_node(m, e, tid, key);
        if z == self.nil {
            return Ok(false);
        }
        let mut y = z;
        let mut y_color = self.g(m, e, tid, y, COLOR);
        let x;
        let zl = self.g(m, e, tid, z, LEFT);
        let zr = self.g(m, e, tid, z, RIGHT);
        if zl == self.nil {
            x = zr;
            self.transplant(m, e, tid, z, zr)?;
        } else if zr == self.nil {
            x = zl;
            self.transplant(m, e, tid, z, zl)?;
        } else {
            y = self.minimum(m, e, tid, zr);
            y_color = self.g(m, e, tid, y, COLOR);
            x = self.g(m, e, tid, y, RIGHT);
            if self.g(m, e, tid, y, PARENT) == z {
                self.s(m, e, tid, x, PARENT, y)?;
            } else {
                let yr = self.g(m, e, tid, y, RIGHT);
                self.transplant(m, e, tid, y, yr)?;
                let zr = self.g(m, e, tid, z, RIGHT);
                self.s(m, e, tid, y, RIGHT, zr)?;
                self.s(m, e, tid, zr, PARENT, y)?;
            }
            self.transplant(m, e, tid, z, y)?;
            let zl = self.g(m, e, tid, z, LEFT);
            self.s(m, e, tid, y, LEFT, zl)?;
            self.s(m, e, tid, zl, PARENT, y)?;
            let zc = self.g(m, e, tid, z, COLOR);
            self.s(m, e, tid, y, COLOR, zc)?;
        }
        if y_color == BLACK {
            self.delete_fixup(m, e, tid, x)?;
        }
        let mut w = memsim::PmWriter::new(tid);
        alloc.free(m, &mut w, z)?;
        self.bump_count(m, e, tid, -1)?;
        Ok(true)
    }

    fn delete_fixup<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        mut x: Addr,
    ) -> Result<(), DsError> {
        while x != self.root(m, e, tid) && self.g(m, e, tid, x, COLOR) == BLACK {
            let xp = self.g(m, e, tid, x, PARENT);
            if x == self.g(m, e, tid, xp, LEFT) {
                let mut w = self.g(m, e, tid, xp, RIGHT);
                if self.g(m, e, tid, w, COLOR) == RED {
                    self.s(m, e, tid, w, COLOR, BLACK)?;
                    self.s(m, e, tid, xp, COLOR, RED)?;
                    self.rotate_left(m, e, tid, xp)?;
                    let xp2 = self.g(m, e, tid, x, PARENT);
                    w = self.g(m, e, tid, xp2, RIGHT);
                }
                let wl = self.g(m, e, tid, w, LEFT);
                let wr = self.g(m, e, tid, w, RIGHT);
                if self.g(m, e, tid, wl, COLOR) == BLACK && self.g(m, e, tid, wr, COLOR) == BLACK {
                    self.s(m, e, tid, w, COLOR, RED)?;
                    x = self.g(m, e, tid, x, PARENT);
                } else {
                    if self.g(m, e, tid, wr, COLOR) == BLACK {
                        self.s(m, e, tid, wl, COLOR, BLACK)?;
                        self.s(m, e, tid, w, COLOR, RED)?;
                        self.rotate_right(m, e, tid, w)?;
                        let xp2 = self.g(m, e, tid, x, PARENT);
                        w = self.g(m, e, tid, xp2, RIGHT);
                    }
                    let xp = self.g(m, e, tid, x, PARENT);
                    let xpc = self.g(m, e, tid, xp, COLOR);
                    self.s(m, e, tid, w, COLOR, xpc)?;
                    self.s(m, e, tid, xp, COLOR, BLACK)?;
                    let wr = self.g(m, e, tid, w, RIGHT);
                    self.s(m, e, tid, wr, COLOR, BLACK)?;
                    self.rotate_left(m, e, tid, xp)?;
                    x = self.root(m, e, tid);
                }
            } else {
                let mut w = self.g(m, e, tid, xp, LEFT);
                if self.g(m, e, tid, w, COLOR) == RED {
                    self.s(m, e, tid, w, COLOR, BLACK)?;
                    self.s(m, e, tid, xp, COLOR, RED)?;
                    self.rotate_right(m, e, tid, xp)?;
                    let xp2 = self.g(m, e, tid, x, PARENT);
                    w = self.g(m, e, tid, xp2, LEFT);
                }
                let wl = self.g(m, e, tid, w, LEFT);
                let wr = self.g(m, e, tid, w, RIGHT);
                if self.g(m, e, tid, wr, COLOR) == BLACK && self.g(m, e, tid, wl, COLOR) == BLACK {
                    self.s(m, e, tid, w, COLOR, RED)?;
                    x = self.g(m, e, tid, x, PARENT);
                } else {
                    if self.g(m, e, tid, wl, COLOR) == BLACK {
                        self.s(m, e, tid, wr, COLOR, BLACK)?;
                        self.s(m, e, tid, w, COLOR, RED)?;
                        self.rotate_left(m, e, tid, w)?;
                        let xp2 = self.g(m, e, tid, x, PARENT);
                        w = self.g(m, e, tid, xp2, LEFT);
                    }
                    let xp = self.g(m, e, tid, x, PARENT);
                    let xpc = self.g(m, e, tid, xp, COLOR);
                    self.s(m, e, tid, w, COLOR, xpc)?;
                    self.s(m, e, tid, xp, COLOR, BLACK)?;
                    let wl = self.g(m, e, tid, w, LEFT);
                    self.s(m, e, tid, wl, COLOR, BLACK)?;
                    self.rotate_right(m, e, tid, xp)?;
                    x = self.root(m, e, tid);
                }
            }
        }
        self.s(m, e, tid, x, COLOR, BLACK)?;
        Ok(())
    }

    /// Visit `(key, value)` pairs in ascending key order
    /// (non-transactional).
    pub fn for_each(&self, m: &mut Machine, tid: Tid, mut f: impl FnMut(u64, u64)) {
        fn walk(m: &mut Machine, tid: Tid, nil: Addr, n: Addr, f: &mut impl FnMut(u64, u64)) {
            if n == nil {
                return;
            }
            let l = m.load_u64(tid, n + LEFT);
            let r = m.load_u64(tid, n + RIGHT);
            let k = m.load_u64(tid, n + KEY);
            let v = m.load_u64(tid, n + VAL);
            walk(m, tid, nil, l, f);
            f(k, v);
            walk(m, tid, nil, r, f);
        }
        let root = m.load_u64(tid, self.base + 8);
        walk(m, tid, self.nil, root, &mut f);
    }

    /// Check the red-black invariants (BST order, red nodes have black
    /// children, equal black-heights). Non-transactional; used by tests
    /// and recovery assertions.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self, m: &mut Machine, tid: Tid) -> Result<(), String> {
        let root = m.load_u64(tid, self.base + 8);
        if root == self.nil {
            return Ok(());
        }
        if m.load_u64(tid, root + COLOR) != BLACK {
            return Err("root is not black".into());
        }
        fn check(
            m: &mut Machine,
            tid: Tid,
            nil: Addr,
            n: Addr,
            lo: Option<u64>,
            hi: Option<u64>,
        ) -> Result<u64, String> {
            if n == nil {
                return Ok(1); // nil is black
            }
            let k = m.load_u64(tid, n + KEY);
            if let Some(lo) = lo {
                if k <= lo {
                    return Err(format!("BST violation: {k} <= {lo}"));
                }
            }
            if let Some(hi) = hi {
                if k >= hi {
                    return Err(format!("BST violation: {k} >= {hi}"));
                }
            }
            let c = m.load_u64(tid, n + COLOR);
            let l = m.load_u64(tid, n + LEFT);
            let r = m.load_u64(tid, n + RIGHT);
            if c == RED {
                if l != nil && m.load_u64(tid, l + COLOR) == RED {
                    return Err(format!("red node {n:#x} has red left child"));
                }
                if r != nil && m.load_u64(tid, r + COLOR) == RED {
                    return Err(format!("red node {n:#x} has red right child"));
                }
            }
            let bl = check(m, tid, nil, l, lo, Some(k))?;
            let br = check(m, tid, nil, r, Some(k), hi)?;
            if bl != br {
                return Err(format!("black-height mismatch at {n:#x}: {bl} vs {br}"));
            }
            Ok(bl + if c == BLACK { 1 } else { 0 })
        }
        check(m, tid, self.nil, root, None, None).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmalloc::SlabBitmapAlloc;
    use pmtx::RedoTxEngine;

    const TID: Tid = Tid(0);

    struct Fix {
        m: Machine,
        eng: RedoTxEngine,
        alloc: SlabBitmapAlloc,
        tree: PRbTree,
    }

    fn setup() -> Fix {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let mut eng = RedoTxEngine::format(&mut m, AddrRange::new(pm.base, 4 << 20), 4);
        let mut w = memsim::PmWriter::new(TID);
        let alloc = SlabBitmapAlloc::format(
            &mut m,
            &mut w,
            AddrRange::new(pm.base + (4 << 20), 16 << 20),
        );
        let mut alloc = alloc;
        eng.begin(&mut m, TID).unwrap();
        let tree = PRbTree::create(
            &mut m,
            &mut eng,
            TID,
            &mut alloc,
            AddrRange::new(pm.base + (24 << 20), RBTREE_REGION_BYTES),
        )
        .unwrap();
        eng.commit(&mut m, TID).unwrap();
        Fix {
            m,
            eng,
            alloc,
            tree,
        }
    }

    fn tx<T>(fx: &mut Fix, f: impl FnOnce(&mut Fix) -> T) -> T {
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let r = f(fx);
        fx.eng.commit(&mut fx.m, TID).unwrap();
        r
    }

    #[test]
    fn insert_get_update() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            assert!(fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 10, 100)
                .unwrap());
            assert!(!fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 10, 200)
                .unwrap());
        });
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, 10), Some(200));
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, 11), None);
        assert_eq!(fx.tree.len(&mut fx.m, TID), 1);
        fx.tree.check_invariants(&mut fx.m, TID).unwrap();
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut fx = setup();
        // Sequential keys are the classic BST worst case; RB fixup must
        // keep invariants.
        for i in 0..100u64 {
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i, i * 2)
                    .unwrap();
            });
        }
        fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        assert_eq!(fx.tree.len(&mut fx.m, TID), 100);
        for i in 0..100u64 {
            assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, i), Some(i * 2));
        }
        // In-order traversal is sorted.
        let mut keys = Vec::new();
        fx.tree.for_each(&mut fx.m, TID, |k, _| keys.push(k));
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_ops_match_btreemap() {
        let mut fx = setup();
        let mut model = std::collections::BTreeMap::new();
        let mut state = 777u64;
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state % 64;
            let op = (state >> 32) % 3;
            tx(&mut fx, |fx| match op {
                0 | 1 => {
                    let fresh = fx
                        .tree
                        .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, key, state)
                        .unwrap();
                    assert_eq!(fresh, model.insert(key, state).is_none());
                }
                _ => {
                    let removed = fx
                        .tree
                        .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, key)
                        .unwrap();
                    assert_eq!(removed, model.remove(&key).is_some());
                }
            });
            fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        }
        assert_eq!(fx.tree.len(&mut fx.m, TID), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, *k), Some(*v));
        }
    }

    #[test]
    fn remove_all_keys() {
        let mut fx = setup();
        let keys: Vec<u64> = vec![50, 25, 75, 10, 30, 60, 90, 5, 15, 27, 35];
        tx(&mut fx, |fx| {
            for &k in &keys {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, k, k)
                    .unwrap();
            }
        });
        for &k in &keys {
            let removed = tx(&mut fx, |fx| {
                fx.tree
                    .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, k)
                    .unwrap()
            });
            assert!(removed, "key {k}");
            fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        }
        assert!(fx.tree.is_empty(&mut fx.m, TID));
    }

    #[test]
    fn remove_missing_is_false() {
        let mut fx = setup();
        let removed = tx(&mut fx, |fx| {
            fx.tree
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 42)
                .unwrap()
        });
        assert!(!removed);
    }

    #[test]
    fn survives_crash_with_invariants() {
        let mut fx = setup();
        let base = fx.tree.base;
        for i in 0..40u64 {
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i * 7 % 41, i)
                    .unwrap();
            });
        }
        let img = fx.m.crash(memsim::CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let pm = m2.config().map.pm;
        let _ = RedoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 4 << 20), 4);
        let tree2 = PRbTree::open(&mut m2, TID, base).unwrap();
        tree2.check_invariants(&mut m2, TID).unwrap();
        assert_eq!(tree2.len(&mut m2, TID), 40);
    }

    #[test]
    fn crash_mid_tx_preserves_invariants() {
        for seed in [2u64, 9, 17, 31] {
            let mut fx = setup();
            let base = fx.tree.base;
            for i in 0..20u64 {
                tx(&mut fx, |fx| {
                    fx.tree
                        .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i, i)
                        .unwrap();
                });
            }
            // Crash mid-insert (uncommitted redo tx: data untouched).
            fx.eng.begin(&mut fx.m, TID).unwrap();
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 1000, 1)
                .unwrap();
            let img = fx.m.crash(memsim::CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let pm = m2.config().map.pm;
            let _ = RedoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 4 << 20), 4);
            let tree2 = PRbTree::open(&mut m2, TID, base).unwrap();
            tree2.check_invariants(&mut m2, TID).unwrap();
            assert_eq!(tree2.len(&mut m2, TID), 20, "seed {seed}");
            let mut eng2 =
                RedoTxEngine::format(&mut m2, AddrRange::new(pm.base + (40 << 20), 4 << 20), 4);
            assert_eq!(
                tree2.get(&mut m2, &mut eng2, TID, 1000),
                None,
                "seed {seed}"
            );
        }
    }
}
