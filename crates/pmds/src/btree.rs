//! Persistent B-tree.

use crate::DsError;
use memsim::Machine;
use pmalloc::PmAllocator;
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};
use pmtx::TxMem;

const MAGIC: u64 = 0x5042_5452_4545_2121; // "PBTREE!!"
const COUNT_SHARDS: u64 = 4;

/// Bytes of PM a tree header needs (header line + count shards).
pub const BTREE_REGION_BYTES: u64 = 64 + COUNT_SHARDS * 64;

/// Maximum keys per node (2t-1 for minimum degree t = 7, so an
/// internal merge of two minimal siblings plus the separator exactly
/// fills a node). A node is 16 B header + 13 keys + 14 children/values
/// ≤ 256 B — one allocator class, four cache lines.
const MAX_KEYS: usize = 13;
const MIN_KEYS: usize = 6; // t - 1

// Node layout: is_leaf u32, nkeys u32, pad u64,
// keys[13] u64 @16, then children[14] u64 @128 (internal)
//                    or values[13] u64 @128 (leaf).
const NODE_BYTES: u64 = 256;
const O_LEAF: u64 = 0;
const O_NKEYS: u64 = 4;
const O_KEYS: u64 = 16;
const O_PTRS: u64 = 128;

/// A persistent B-tree mapping `u64` keys to `u64` values, with ordered
/// range scans.
///
/// "PMFS stores user data in 4KB blocks and metadata in persistent
/// B-trees" and N-store's OPTWAL "places tables and indexes in these
/// segments" (Section 3) — this is that index structure, usable over
/// either transaction engine. Insert and remove use the classic
/// single-pass preemptive split/merge descent, so no parent pointers
/// are stored and every mutation is a bounded set of logged writes.
#[derive(Debug, Clone, Copy)]
pub struct PBTree {
    base: Addr,
}

impl PBTree {
    /// Create a fresh tree in `region` (header; nodes come from the
    /// allocator), inside an open transaction.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than [`BTREE_REGION_BYTES`].
    pub fn create<E: TxMem, A: PmAllocator>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        region: AddrRange,
    ) -> Result<PBTree, DsError> {
        assert!(region.len >= BTREE_REGION_BYTES, "b-tree region too small");
        let root = Self::new_node(m, eng, tid, alloc, true)?;
        eng.tx_write_u64(m, tid, region.base, MAGIC, Category::AppMeta)?;
        eng.tx_write_u64(m, tid, region.base + 8, root, Category::AppMeta)?;
        Ok(PBTree { base: region.base })
    }

    /// Re-attach after a crash.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `base` does not hold a tree.
    pub fn open(m: &mut Machine, tid: Tid, base: Addr) -> Result<PBTree, DsError> {
        if m.load_u64(tid, base) != MAGIC {
            return Err(DsError::BadHeader { addr: base });
        }
        Ok(PBTree { base })
    }

    /// Number of keys (sums the per-thread count shards).
    pub fn len(&self, m: &mut Machine, tid: Tid) -> u64 {
        // Shards hold signed deltas (a cross-thread remove drives a
        // shard negative); the non-negative total is exact modulo 2^64.
        (0..COUNT_SHARDS)
            .map(|s| m.load_u64(tid, self.base + 64 + s * 64))
            .fold(0u64, u64::wrapping_add)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self, m: &mut Machine, tid: Tid) -> bool {
        self.len(m, tid) == 0
    }

    fn bump_count<E: TxMem>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        delta: i64,
    ) -> Result<(), DsError> {
        let shard = self.base + 64 + (tid.0 as u64 % COUNT_SHARDS) * 64;
        let n = e.tx_read_u64(m, tid, shard);
        e.tx_write_u64(
            m,
            tid,
            shard,
            n.wrapping_add_signed(delta),
            Category::AppMeta,
        )?;
        Ok(())
    }

    fn new_node<E: TxMem, A: PmAllocator>(
        m: &mut Machine,
        eng: &mut E,
        tid: Tid,
        alloc: &mut A,
        leaf: bool,
    ) -> Result<Addr, DsError> {
        let mut w = memsim::PmWriter::new(tid);
        let node = alloc.alloc(m, &mut w, NODE_BYTES)?;
        // One object-copy write initializes the header (nkeys = 0).
        let mut hdr = [0u8; 16];
        hdr[0..4].copy_from_slice(&(leaf as u32).to_le_bytes());
        eng.tx_write(m, tid, node + O_LEAF, &hdr, Category::UserData)?;
        Ok(node)
    }

    // -- field helpers ------------------------------------------------

    fn is_leaf<E: TxMem>(m: &mut Machine, e: &mut E, tid: Tid, n: Addr) -> bool {
        e.tx_read_u32(m, tid, n + O_LEAF) != 0
    }

    fn nkeys<E: TxMem>(m: &mut Machine, e: &mut E, tid: Tid, n: Addr) -> usize {
        e.tx_read_u32(m, tid, n + O_NKEYS) as usize
    }

    fn set_nkeys<E: TxMem>(
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        n: Addr,
        v: usize,
    ) -> Result<(), DsError> {
        e.tx_write_u32(m, tid, n + O_NKEYS, v as u32, Category::UserData)?;
        Ok(())
    }

    fn key<E: TxMem>(m: &mut Machine, e: &mut E, tid: Tid, n: Addr, i: usize) -> u64 {
        e.tx_read_u64(m, tid, n + O_KEYS + i as u64 * 8)
    }

    fn ptr<E: TxMem>(m: &mut Machine, e: &mut E, tid: Tid, n: Addr, i: usize) -> u64 {
        e.tx_read_u64(m, tid, n + O_PTRS + i as u64 * 8)
    }

    /// Read a node's keys and pointers/values into volatile buffers.
    fn read_node<E: TxMem>(
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        n: Addr,
    ) -> (bool, Vec<u64>, Vec<u64>) {
        let leaf = Self::is_leaf(m, e, tid, n);
        let nk = Self::nkeys(m, e, tid, n);
        let keys_raw = e.tx_read(m, tid, n + O_KEYS, nk * 8);
        let keys = keys_raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
            .collect();
        let np = if leaf { nk } else { nk + 1 };
        let ptrs_raw = e.tx_read(m, tid, n + O_PTRS, np * 8);
        let ptrs = ptrs_raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
            .collect();
        (leaf, keys, ptrs)
    }

    /// Write back a node's keys and pointers/values (two object-copy
    /// writes + the key count).
    fn write_node<E: TxMem>(
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        n: Addr,
        keys: &[u64],
        ptrs: &[u64],
    ) -> Result<(), DsError> {
        let kb: Vec<u8> = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        let pb: Vec<u8> = ptrs.iter().flat_map(|p| p.to_le_bytes()).collect();
        if !kb.is_empty() {
            e.tx_write(m, tid, n + O_KEYS, &kb, Category::UserData)?;
        }
        if !pb.is_empty() {
            e.tx_write(m, tid, n + O_PTRS, &pb, Category::UserData)?;
        }
        Self::set_nkeys(m, e, tid, n, keys.len())?;
        Ok(())
    }

    // -- lookup -------------------------------------------------------

    /// Look up `key`.
    pub fn get<E: TxMem>(&self, m: &mut Machine, e: &mut E, tid: Tid, key: u64) -> Option<u64> {
        let mut n = e.tx_read_u64(m, tid, self.base + 8);
        loop {
            let nk = Self::nkeys(m, e, tid, n);
            let mut i = 0;
            while i < nk && Self::key(m, e, tid, n, i) < key {
                i += 1;
            }
            if i < nk && Self::key(m, e, tid, n, i) == key {
                if Self::is_leaf(m, e, tid, n) {
                    return Some(Self::ptr(m, e, tid, n, i));
                }
                // Values live only in leaves; an equal separator key
                // routes to the right child, where the leaf copy is.
                n = Self::ptr(m, e, tid, n, i + 1);
                continue;
            }
            if Self::is_leaf(m, e, tid, n) {
                return None;
            }
            n = Self::ptr(m, e, tid, n, i);
        }
    }

    /// Every `(key, value)` with `lo <= key < hi`, in order
    /// (non-transactional scan).
    pub fn range(&self, m: &mut Machine, tid: Tid, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let root = m.load_u64(tid, self.base + 8);
        self.range_walk(m, tid, root, lo, hi, &mut out);
        out
    }

    fn range_walk(
        &self,
        m: &mut Machine,
        tid: Tid,
        n: Addr,
        lo: u64,
        hi: u64,
        out: &mut Vec<(u64, u64)>,
    ) {
        let leaf = m.load_u32(tid, n + O_LEAF) != 0;
        let nk = m.load_u32(tid, n + O_NKEYS) as usize;
        if leaf {
            for i in 0..nk {
                let k = m.load_u64(tid, n + O_KEYS + i as u64 * 8);
                if k >= lo && k < hi {
                    out.push((k, m.load_u64(tid, n + O_PTRS + i as u64 * 8)));
                }
            }
            return;
        }
        for i in 0..=nk {
            // Child i covers keys < keys[i] (and >= keys[i-1]).
            let lower_ok = i == 0 || m.load_u64(tid, n + O_KEYS + (i as u64 - 1) * 8) < hi;
            let upper_ok = i == nk || m.load_u64(tid, n + O_KEYS + i as u64 * 8) >= lo;
            if lower_ok && upper_ok {
                let child = m.load_u64(tid, n + O_PTRS + i as u64 * 8);
                self.range_walk(m, tid, child, lo, hi, out);
            }
        }
    }

    // -- insert -------------------------------------------------------

    /// Insert or update. Returns `true` if the key was new.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn insert<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: u64,
        val: u64,
    ) -> Result<bool, DsError> {
        let root = e.tx_read_u64(m, tid, self.base + 8);
        // Preemptive root split keeps the descent single-pass.
        let root = if Self::nkeys(m, e, tid, root) == MAX_KEYS {
            let new_root = Self::new_node(m, e, tid, alloc, false)?;
            Self::write_node(m, e, tid, new_root, &[], &[root])?;
            self.split_child(m, e, tid, alloc, new_root, 0)?;
            e.tx_write_u64(m, tid, self.base + 8, new_root, Category::UserData)?;
            new_root
        } else {
            root
        };
        let fresh = self.insert_nonfull(m, e, tid, alloc, root, key, val)?;
        if fresh {
            self.bump_count(m, e, tid, 1)?;
        }
        Ok(fresh)
    }

    #[allow(clippy::too_many_arguments)] // machine + engine + allocator plumbing
    fn insert_nonfull<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        mut n: Addr,
        key: u64,
        val: u64,
    ) -> Result<bool, DsError> {
        loop {
            let (leaf, keys, ptrs) = Self::read_node(m, e, tid, n);
            if leaf {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        e.tx_write_u64(m, tid, n + O_PTRS + i as u64 * 8, val, Category::UserData)?;
                        return Ok(false);
                    }
                    Err(i) => {
                        let mut keys = keys;
                        let mut vals = ptrs;
                        keys.insert(i, key);
                        vals.insert(i, val);
                        Self::write_node(m, e, tid, n, &keys, &vals)?;
                        return Ok(true);
                    }
                }
            }
            let mut i = keys.partition_point(|&k| k < key);
            if i < keys.len() && keys[i] == key {
                i += 1; // equal internal keys route right
            }
            let child = ptrs[i];
            if Self::nkeys(m, e, tid, child) == MAX_KEYS {
                self.split_child(m, e, tid, alloc, n, i)?;
                // Re-route after the split.
                let sep = Self::key(m, e, tid, n, i);
                let idx = if key >= sep { i + 1 } else { i };
                n = Self::ptr(m, e, tid, n, idx);
            } else {
                n = child;
            }
        }
    }

    /// Split the full `i`-th child of `parent`.
    fn split_child<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        parent: Addr,
        i: usize,
    ) -> Result<(), DsError> {
        let child = Self::ptr(m, e, tid, parent, i);
        let (leaf, keys, ptrs) = Self::read_node(m, e, tid, child);
        debug_assert_eq!(keys.len(), MAX_KEYS);
        let mid = MAX_KEYS / 2;
        let sep = keys[mid];
        let right = Self::new_node(m, e, tid, alloc, leaf)?;
        if leaf {
            // Leaves keep the separator key (values live in leaves).
            Self::write_node(m, e, tid, right, &keys[mid..], &ptrs[mid..])?;
            Self::write_node(m, e, tid, child, &keys[..mid], &ptrs[..mid])?;
        } else {
            Self::write_node(m, e, tid, right, &keys[mid + 1..], &ptrs[mid + 1..])?;
            Self::write_node(m, e, tid, child, &keys[..mid], &ptrs[..=mid])?;
        }
        let (_, mut pkeys, mut pptrs) = Self::read_node(m, e, tid, parent);
        pkeys.insert(i, sep);
        pptrs.insert(i + 1, right);
        Self::write_node(m, e, tid, parent, &pkeys, &pptrs)?;
        Ok(())
    }

    // -- remove -------------------------------------------------------

    /// Remove `key`; returns whether it was present.
    ///
    /// # Errors
    ///
    /// Engine/allocator errors.
    pub fn remove<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        key: u64,
    ) -> Result<bool, DsError> {
        let root = e.tx_read_u64(m, tid, self.base + 8);
        let removed = self.remove_from(m, e, tid, alloc, root, key)?;
        // Shrink the root if it emptied into a single child.
        let (leaf, keys, ptrs) = Self::read_node(m, e, tid, root);
        if !leaf && keys.is_empty() {
            e.tx_write_u64(m, tid, self.base + 8, ptrs[0], Category::UserData)?;
            let mut w = memsim::PmWriter::new(tid);
            alloc.free(m, &mut w, root)?;
        }
        if removed {
            self.bump_count(m, e, tid, -1)?;
        }
        Ok(removed)
    }

    fn remove_from<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        n: Addr,
        key: u64,
    ) -> Result<bool, DsError> {
        let (leaf, keys, ptrs) = Self::read_node(m, e, tid, n);
        if leaf {
            return match keys.binary_search(&key) {
                Ok(i) => {
                    let mut keys = keys;
                    let mut vals = ptrs;
                    keys.remove(i);
                    vals.remove(i);
                    Self::write_node(m, e, tid, n, &keys, &vals)?;
                    Ok(true)
                }
                Err(_) => Ok(false),
            };
        }
        let mut i = keys.partition_point(|&k| k < key);
        if i < keys.len() && keys[i] == key {
            i += 1;
        }
        // Preemptively ensure the child we descend into can lose a key.
        let child = ptrs[i];
        let child = if Self::nkeys(m, e, tid, child) <= MIN_KEYS {
            self.rebalance_child(m, e, tid, alloc, n, i)?
        } else {
            child
        };
        self.remove_from(m, e, tid, alloc, child, key)
    }

    /// Give the `i`-th child of `parent` an extra key by borrowing from
    /// a sibling or merging; returns the (possibly merged) child to
    /// descend into.
    fn rebalance_child<E: TxMem, A: PmAllocator>(
        &self,
        m: &mut Machine,
        e: &mut E,
        tid: Tid,
        alloc: &mut A,
        parent: Addr,
        i: usize,
    ) -> Result<Addr, DsError> {
        let (_, pkeys, pptrs) = Self::read_node(m, e, tid, parent);
        let child = pptrs[i];
        let (cleaf, mut ckeys, mut cptrs) = Self::read_node(m, e, tid, child);

        // Borrow from the left sibling.
        if i > 0 {
            let left = pptrs[i - 1];
            let (_, lkeys, lptrs) = Self::read_node(m, e, tid, left);
            if lkeys.len() > MIN_KEYS {
                if cleaf {
                    ckeys.insert(0, *lkeys.last().expect("nonempty"));
                    cptrs.insert(0, *lptrs.last().expect("nonempty"));
                    // The parent separator becomes the moved key.
                    let mut pk = pkeys;
                    pk[i - 1] = ckeys[0];
                    Self::write_node(m, e, tid, parent, &pk, &pptrs)?;
                } else {
                    ckeys.insert(0, pkeys[i - 1]);
                    cptrs.insert(0, *lptrs.last().expect("nonempty"));
                    let mut pk = pkeys;
                    pk[i - 1] = *lkeys.last().expect("nonempty");
                    Self::write_node(m, e, tid, parent, &pk, &pptrs)?;
                }
                Self::write_node(
                    m,
                    e,
                    tid,
                    left,
                    &lkeys[..lkeys.len() - 1],
                    &lptrs[..lptrs.len() - 1],
                )?;
                Self::write_node(m, e, tid, child, &ckeys, &cptrs)?;
                return Ok(child);
            }
        }
        // Borrow from the right sibling.
        if i < pptrs.len() - 1 {
            let right = pptrs[i + 1];
            let (_, rkeys, rptrs) = Self::read_node(m, e, tid, right);
            if rkeys.len() > MIN_KEYS {
                if cleaf {
                    ckeys.push(rkeys[0]);
                    cptrs.push(rptrs[0]);
                    let mut pk = pkeys;
                    pk[i] = rkeys[1];
                    Self::write_node(m, e, tid, parent, &pk, &pptrs)?;
                } else {
                    ckeys.push(pkeys[i]);
                    cptrs.push(rptrs[0]);
                    let mut pk = pkeys;
                    pk[i] = rkeys[0];
                    Self::write_node(m, e, tid, parent, &pk, &pptrs)?;
                }
                Self::write_node(m, e, tid, right, &rkeys[1..], &rptrs[1..])?;
                Self::write_node(m, e, tid, child, &ckeys, &cptrs)?;
                return Ok(child);
            }
        }
        // Merge with a sibling.
        let (li, ri) = if i > 0 { (i - 1, i) } else { (i, i + 1) };
        let left = pptrs[li];
        let right = pptrs[ri];
        let (lleaf, mut lkeys, mut lptrs) = Self::read_node(m, e, tid, left);
        let (_, rkeys, rptrs) = Self::read_node(m, e, tid, right);
        if lleaf {
            lkeys.extend_from_slice(&rkeys);
            lptrs.extend_from_slice(&rptrs);
        } else {
            lkeys.push(pkeys[li]);
            lkeys.extend_from_slice(&rkeys);
            lptrs.extend_from_slice(&rptrs);
        }
        Self::write_node(m, e, tid, left, &lkeys, &lptrs)?;
        let mut pk = pkeys;
        let mut pp = pptrs;
        pk.remove(li);
        pp.remove(ri);
        Self::write_node(m, e, tid, parent, &pk, &pp)?;
        let mut w = memsim::PmWriter::new(tid);
        alloc.free(m, &mut w, right)?;
        Ok(left)
    }

    /// Check the B-tree invariants: key order, fill factors, uniform
    /// leaf depth. Non-transactional; used by tests.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self, m: &mut Machine, tid: Tid) -> Result<(), String> {
        let root = m.load_u64(tid, self.base + 8);
        let mut leaf_depth = None;
        self.check_node(m, tid, root, None, None, 0, true, &mut leaf_depth)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        m: &mut Machine,
        tid: Tid,
        n: Addr,
        lo: Option<u64>,
        hi: Option<u64>,
        depth: usize,
        is_root: bool,
        leaf_depth: &mut Option<usize>,
    ) -> Result<(), String> {
        let leaf = m.load_u32(tid, n + O_LEAF) != 0;
        let nk = m.load_u32(tid, n + O_NKEYS) as usize;
        if nk > MAX_KEYS {
            return Err(format!("node {n:#x} overfull: {nk}"));
        }
        if !is_root && nk < MIN_KEYS {
            return Err(format!("node {n:#x} underfull: {nk}"));
        }
        let mut prev: Option<u64> = lo;
        for i in 0..nk {
            let k = m.load_u64(tid, n + O_KEYS + i as u64 * 8);
            if let Some(p) = prev {
                if k <= p && !(i == 0 && lo == Some(p) && k >= p) {
                    return Err(format!("key order violated at {n:#x}: {k} after {p}"));
                }
            }
            if let Some(h) = hi {
                if k >= h {
                    return Err(format!("key {k} at {n:#x} >= upper bound {h}"));
                }
            }
            prev = Some(k);
        }
        if leaf {
            match leaf_depth {
                Some(d) if *d != depth => return Err("leaves at unequal depth".into()),
                None => *leaf_depth = Some(depth),
                _ => {}
            }
            return Ok(());
        }
        for i in 0..=nk {
            let child = m.load_u64(tid, n + O_PTRS + i as u64 * 8);
            let clo = if i == 0 {
                lo
            } else {
                Some(m.load_u64(tid, n + O_KEYS + (i as u64 - 1) * 8))
            };
            let chi = if i == nk {
                hi
            } else {
                Some(m.load_u64(tid, n + O_KEYS + i as u64 * 8))
            };
            self.check_node(m, tid, child, clo, chi, depth + 1, false, leaf_depth)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MachineConfig;
    use pmalloc::SlabBitmapAlloc;
    use pmtx::UndoTxEngine;

    const TID: Tid = Tid(0);

    struct Fix {
        m: Machine,
        eng: UndoTxEngine,
        alloc: SlabBitmapAlloc,
        tree: PBTree,
    }

    fn setup() -> Fix {
        let mut m = Machine::new(MachineConfig::asplos17());
        let pm = m.config().map.pm;
        let mut eng = UndoTxEngine::format(&mut m, AddrRange::new(pm.base, 16 << 20), 4);
        let mut w = memsim::PmWriter::new(TID);
        let alloc = SlabBitmapAlloc::format(
            &mut m,
            &mut w,
            AddrRange::new(pm.base + (16 << 20), 64 << 20),
        );
        let mut alloc = alloc;
        eng.begin(&mut m, TID).unwrap();
        let tree = PBTree::create(
            &mut m,
            &mut eng,
            TID,
            &mut alloc,
            AddrRange::new(pm.base + (90 << 20), BTREE_REGION_BYTES),
        )
        .unwrap();
        eng.commit(&mut m, TID).unwrap();
        Fix {
            m,
            eng,
            alloc,
            tree,
        }
    }

    fn tx<T>(fx: &mut Fix, f: impl FnOnce(&mut Fix) -> T) -> T {
        fx.eng.begin(&mut fx.m, TID).unwrap();
        let r = f(fx);
        fx.eng.commit(&mut fx.m, TID).unwrap();
        r
    }

    #[test]
    fn insert_get_update() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            assert!(fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 5, 50)
                .unwrap());
            assert!(!fx
                .tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 5, 55)
                .unwrap());
        });
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, 5), Some(55));
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, 6), None);
        assert_eq!(fx.tree.len(&mut fx.m, TID), 1);
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let mut fx = setup();
        for i in 0..300u64 {
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i, i * 3)
                    .unwrap();
            });
        }
        fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        for i in 0..300u64 {
            assert_eq!(
                fx.tree.get(&mut fx.m, &mut fx.eng, TID, i),
                Some(i * 3),
                "key {i}"
            );
        }
        assert_eq!(fx.tree.len(&mut fx.m, TID), 300);
    }

    #[test]
    fn range_scan_is_ordered_and_bounded() {
        let mut fx = setup();
        tx(&mut fx, |fx| {
            for i in (0..100u64).rev() {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i * 2, i)
                    .unwrap();
            }
        });
        let got = fx.tree.range(&mut fx.m, TID, 10, 30);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20, 22, 24, 26, 28]);
        for (k, v) in got {
            assert_eq!(v, k / 2);
        }
        assert!(fx.tree.range(&mut fx.m, TID, 500, 600).is_empty());
    }

    #[test]
    fn random_ops_match_btreemap() {
        let mut fx = setup();
        let mut model = std::collections::BTreeMap::new();
        let mut state = 0xfeed_u64;
        for _ in 0..600 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state % 128;
            let op = (state >> 32) % 3;
            tx(&mut fx, |fx| match op {
                0 | 1 => {
                    let fresh = fx
                        .tree
                        .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, key, state)
                        .unwrap();
                    assert_eq!(fresh, model.insert(key, state).is_none(), "insert {key}");
                }
                _ => {
                    let removed = fx
                        .tree
                        .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, key)
                        .unwrap();
                    assert_eq!(removed, model.remove(&key).is_some(), "remove {key}");
                }
            });
            fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        }
        assert_eq!(fx.tree.len(&mut fx.m, TID), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, *k), Some(*v));
        }
        // Full range scan equals the model, in order.
        let scan = fx.tree.range(&mut fx.m, TID, 0, u64::MAX);
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(scan, expect);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut fx = setup();
        for i in 0..120u64 {
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i, i)
                    .unwrap();
            });
        }
        for i in 0..120u64 {
            let removed = tx(&mut fx, |fx| {
                fx.tree
                    .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i)
                    .unwrap()
            });
            assert!(removed, "key {i}");
            fx.tree.check_invariants(&mut fx.m, TID).unwrap();
        }
        assert!(fx.tree.is_empty(&mut fx.m, TID));
        tx(&mut fx, |fx| {
            fx.tree
                .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 7, 7)
                .unwrap();
        });
        assert_eq!(fx.tree.get(&mut fx.m, &mut fx.eng, TID, 7), Some(7));
    }

    #[test]
    fn remove_missing_is_false() {
        let mut fx = setup();
        let removed = tx(&mut fx, |fx| {
            fx.tree
                .remove(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 42)
                .unwrap()
        });
        assert!(!removed);
    }

    #[test]
    fn survives_crash_with_invariants() {
        let mut fx = setup();
        let base = fx.tree.base;
        for i in 0..80u64 {
            tx(&mut fx, |fx| {
                fx.tree
                    .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, i * 13 % 97, i)
                    .unwrap();
            });
        }
        // Crash mid-insert: the committed prefix must be intact.
        fx.eng.begin(&mut fx.m, TID).unwrap();
        fx.tree
            .insert(&mut fx.m, &mut fx.eng, TID, &mut fx.alloc, 1000, 1)
            .unwrap();
        for seed in [3u64, 19, 41] {
            let img = Machine::from_image(MachineConfig::asplos17(), &fx.m.durable_image())
                .crash(memsim::CrashSpec::Adversarial { seed });
            let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
            let pm = m2.config().map.pm;
            let mut eng2 =
                UndoTxEngine::recover(&mut m2, TID, AddrRange::new(pm.base, 16 << 20), 4);
            let tree2 = PBTree::open(&mut m2, TID, base).unwrap();
            tree2.check_invariants(&mut m2, TID).unwrap();
            assert_eq!(
                tree2.get(&mut m2, &mut eng2, TID, 1000),
                None,
                "seed {seed}"
            );
            assert_eq!(tree2.len(&mut m2, TID), 80, "seed {seed}");
        }
    }
}
