//! Deterministic hashing for persistent structures.

/// FNV-1a 64-bit hash.
///
/// Persistent hash tables must hash identically across restarts, so the
/// function is fixed and seedless (unlike `std`'s randomized hasher).
///
/// ```
/// let h1 = pmds::fnv1a(b"key");
/// let h2 = pmds::fnv1a(b"key");
/// assert_eq!(h1, h2);
/// assert_ne!(pmds::fnv1a(b"a"), pmds::fnv1a(b"b"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn spreads_sequential_keys() {
        let hashes: std::collections::HashSet<u64> =
            (0..1000u64).map(|i| fnv1a(&i.to_le_bytes())).collect();
        assert_eq!(hashes.len(), 1000);
    }
}
