//! Resizable concurrent durable hash table with detectable recovery.
//!
//! The WHISPER stores that matter most — Memcached's object table,
//! Redis's keyspace — are hash tables that *grow* while serving
//! traffic. This structure implements the clevel-style approach: two
//! bucket directories coexist during a resize, and every writer
//! migrates a few buckets of the old directory before touching the
//! new one ("help along"), so the resize is incremental, concurrent
//! with normal operations, and never needs a stop-the-world pass.
//!
//! Crash-consistency discipline (no transaction engine; everything is
//! line-granular old-or-new):
//!
//! * Nodes are single 64-byte lines, written completely in the epoch
//!   *before* the single pointer store that links them — a node is
//!   never half-visible.
//! * The table is prepend-only: an upsert links a fresh version at
//!   the bucket head (lookups stop at the first match, so the newest
//!   version wins) and a remove links a tombstone version. Nothing is
//!   ever unlinked in place, so readers can never observe a torn
//!   chain.
//! * All resize state — both directory pointers, both sizes, the
//!   migration watermark, the allocation cursor — lives in the one
//!   header line, so each transition (start resize, advance the
//!   watermark, finish resize) is a single atomic line update.
//! * Bucket migration copies nodes (never modifies the old
//!   directory), bumps the watermark only after the copies are
//!   fenced, and is idempotent: a re-run after a crash skips keys the
//!   new directory already holds.
//!
//! Detectability: like [`crate::DurableQueue`], each writer publishes
//! a per-slot announce line (`Pending`, node address, sequence)
//! before linking; [`CHash::recover`] reports, per in-flight
//! operation, whether it completed, was rolled forward, or was
//! discarded.

use crate::{fnv1a, DsError};
use memsim::{Machine, PmWriter};
use pmem::{Addr, AddrRange};
use pmtrace::{Category, Tid};

const MAGIC: u64 = 0x5043_4841_5348_3156; // "PCHASH1V"

// Header line layout: exactly 64 bytes. The resize fields are
// contiguous so each resize transition (start, finish) is ONE store —
// a crash can split distinct stores to the same line, but never one
// store.
const H_MAGIC: u64 = 0;
const H_DIR: u64 = 8;
const H_NBUCKETS: u64 = 16;
const H_NEW_DIR: u64 = 24;
const H_NEW_NBUCKETS: u64 = 32;
const H_MIGRATED: u64 = 40;
const H_CURSOR: u64 = 48;
const H_SLOTS: u64 = 56;

// Announce line layout (one per writer slot).
const A_STATE: u64 = 0;
const A_NODE: u64 = 8;
const A_SEQ: u64 = 16;

// States: 0 is idle (the formatted region is zeroed).
const STATE_PENDING: u64 = 1;
const STATE_DONE: u64 = 2;

// Node line layout (single 64-byte line).
const N_NEXT: u64 = 0;
const N_SEQ: u64 = 8;
const N_KLEN: u64 = 16;
const N_VLEN: u64 = 20;
const N_PAYLOAD: u64 = 24;

/// Largest key+value an inline single-line node can carry.
pub const CHASH_MAX_ITEM: usize = 40;

/// Value-length marker for a tombstone (removed key) version.
const TOMBSTONE: u32 = u32::MAX;

/// Grow when `count > GROW_NUM * nbuckets` (chains of ~2 on average).
const GROW_NUM: u64 = 2;
/// Old buckets each writer migrates per operation, beyond its own.
const MIGRATE_BATCH: u64 = 2;

/// What recovery decided about one in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashOpFate {
    /// The new version was linked; recovery marked the op done.
    Completed,
    /// The prepared node was durable but unlinked; recovery linked it.
    RolledForward,
    /// The preparation was torn; recovery discarded it.
    Discarded,
}

/// Recovery report: `(slot, sequence, fate)` per in-flight operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HashRecovery {
    /// One entry per announce slot found mid-operation.
    pub ops: Vec<(u32, u64, HashOpFate)>,
}

/// A resizable concurrent durable hash table: prepend-only versioned
/// chains, two-directory incremental migration, per-slot announces.
///
/// `count` is a volatile estimate (rebuilt on [`CHash::open`]) used
/// only to trigger growth; correctness never depends on it.
#[derive(Debug)]
pub struct CHash {
    head: Addr,
    slots: u64,
    region: AddrRange,
    count: u64,
}

impl CHash {
    /// Bytes of PM for the header, `slots` announce lines, and
    /// `arena_lines` 64-byte lines shared by directories and nodes.
    pub fn region_bytes(slots: u32, arena_lines: u64) -> u64 {
        64 + u64::from(slots) * 64 + arena_lines * 64
    }

    fn announce_addr(&self, slot: u32) -> Addr {
        self.head + 64 + u64::from(slot) * 64
    }

    fn arena(&self) -> Addr {
        self.head + 64 + self.slots * 64
    }

    fn arena_lines(&self) -> u64 {
        (self.region.len - 64 - self.slots * 64) / 64
    }

    fn check_slot(&self, slot: u32) -> Result<(), DsError> {
        if u64::from(slot) < self.slots {
            Ok(())
        } else {
            Err(DsError::BadSlot {
                slot,
                slots: self.slots as u32,
            })
        }
    }

    /// Allocate `lines` fresh 64-byte lines from the bump cursor and
    /// durably publish the bump (fresh lines are never-written PM, so
    /// they read as zero). Returns the base address.
    fn alloc_lines(
        &self,
        m: &mut Machine,
        w: &mut PmWriter,
        tid: Tid,
        lines: u64,
    ) -> Result<Addr, DsError> {
        let cursor = m.load_u64(tid, self.head + H_CURSOR);
        if cursor + lines > self.arena_lines() {
            return Err(DsError::Full {
                capacity: self.arena_lines(),
            });
        }
        w.write_u64(m, self.head + H_CURSOR, cursor + lines, Category::AllocMeta);
        Ok(self.arena() + cursor * 64)
    }

    /// Create a fresh table in `region` (never-written, zeroed PM).
    ///
    /// # Errors
    ///
    /// [`DsError::Full`] if the region cannot hold the initial
    /// directory.
    ///
    /// # Panics
    ///
    /// Panics on a zero `slots`/`nbuckets` or an undersized region.
    pub fn create(
        m: &mut Machine,
        tid: Tid,
        region: AddrRange,
        slots: u32,
        nbuckets: u64,
    ) -> Result<CHash, DsError> {
        assert!(slots > 0, "need at least one writer slot");
        assert!(nbuckets > 0, "need at least one bucket");
        assert!(
            region.len >= Self::region_bytes(slots, nbuckets.div_ceil(8) + 8),
            "region too small"
        );
        let table = CHash {
            head: region.base,
            slots: u64::from(slots),
            region,
            count: 0,
        };
        let mut w = PmWriter::new(tid);
        let dir_lines = (nbuckets * 8).div_ceil(64);
        let dir = table.alloc_lines(m, &mut w, tid, dir_lines)?;
        w.write_u64(m, region.base + H_DIR, dir, Category::AppMeta);
        w.write_u64(m, region.base + H_NBUCKETS, nbuckets, Category::AppMeta);
        w.write_u64(
            m,
            region.base + H_SLOTS,
            u64::from(slots),
            Category::AppMeta,
        );
        // Magic last on the same line: header valid atomically.
        w.write_u64(m, region.base + H_MAGIC, MAGIC, Category::AppMeta);
        w.durability_fence(m);
        Ok(table)
    }

    /// Re-attach after a crash. Call [`CHash::recover`] next.
    ///
    /// # Errors
    ///
    /// [`DsError::BadHeader`] if `region` does not hold a table.
    pub fn open(m: &mut Machine, tid: Tid, region: AddrRange) -> Result<CHash, DsError> {
        if m.load_u64(tid, region.base + H_MAGIC) != MAGIC {
            return Err(DsError::BadHeader { addr: region.base });
        }
        let slots = m.load_u64(tid, region.base + H_SLOTS);
        let mut table = CHash {
            head: region.base,
            slots,
            region,
            count: 0,
        };
        table.count = table.live_count(m, tid);
        Ok(table)
    }

    /// The directory and bucket index a key currently routes to.
    /// During a resize, buckets below the watermark route to the new
    /// directory; the rest still route to the old one.
    fn route(&self, m: &mut Machine, tid: Tid, hash: u64) -> (Addr, u64) {
        let dir = m.load_u64(tid, self.head + H_DIR);
        let nb = m.load_u64(tid, self.head + H_NBUCKETS);
        let new_dir = m.load_u64(tid, self.head + H_NEW_DIR);
        if new_dir == 0 {
            return (dir, hash % nb);
        }
        let migrated = m.load_u64(tid, self.head + H_MIGRATED);
        let old_b = hash % nb;
        if old_b < migrated {
            let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
            (new_dir, hash % new_nb)
        } else {
            (dir, old_b)
        }
    }

    /// First (newest) version of `key` in the chain at `bucket_head`,
    /// or 0. Tombstones are returned like any version.
    fn find_in_bucket(&self, m: &mut Machine, tid: Tid, bucket: Addr, key: &[u8]) -> Addr {
        let mut node = m.load_u64(tid, bucket);
        while node != 0 {
            let klen = m.load_u32(tid, node + N_KLEN) as usize;
            if klen == key.len() && m.load_vec(tid, node + N_PAYLOAD, klen) == key {
                return node;
            }
            node = m.load_u64(tid, node + N_NEXT);
        }
        0
    }

    /// Migrate old bucket `b` into the new directory: copy the newest
    /// version of every key (tombstones included, so deletions don't
    /// resurrect), oldest-last so the copies preserve recency order.
    /// Never modifies the old directory; idempotent, so a crashed
    /// migration simply re-runs.
    fn migrate_bucket(
        &self,
        m: &mut Machine,
        w: &mut PmWriter,
        tid: Tid,
        b: u64,
    ) -> Result<(), DsError> {
        let dir = m.load_u64(tid, self.head + H_DIR);
        let new_dir = m.load_u64(tid, self.head + H_NEW_DIR);
        let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);

        // Collect the newest version of each key, head-first.
        let mut node = m.load_u64(tid, dir + b * 8);
        let mut newest: Vec<(Vec<u8>, Addr)> = Vec::new();
        while node != 0 {
            let klen = m.load_u32(tid, node + N_KLEN) as usize;
            let key = m.load_vec(tid, node + N_PAYLOAD, klen);
            if !newest.iter().any(|(k, _)| *k == key) {
                newest.push((key, node));
            }
            node = m.load_u64(tid, node + N_NEXT);
        }

        // Copy epoch: write every copy line (skipping keys the new
        // directory already holds from a torn earlier attempt), then
        // one fence; link epoch: bucket-head stores, then one fence.
        let mut links: Vec<(Addr, Addr)> = Vec::new(); // (bucket slot, node)
        for (key, src) in newest.iter().rev() {
            let nb_addr = new_dir + (fnv1a(key) % new_nb) * 8;
            if self.find_in_bucket(m, tid, nb_addr, key) != 0 {
                continue;
            }
            let seq = m.load_u64(tid, *src + N_SEQ);
            let vlen = m.load_u32(tid, *src + N_VLEN);
            let val = if vlen == TOMBSTONE {
                Vec::new()
            } else {
                m.load_vec(tid, *src + N_PAYLOAD + key.len() as u64, vlen as usize)
            };
            // The head this copy will chain behind: a link from this
            // same batch if one targets the bucket, else the durable
            // head.
            let next = links
                .iter()
                .rev()
                .find(|(slot, _)| *slot == nb_addr)
                .map(|&(_, n)| n)
                .unwrap_or_else(|| m.load_u64(tid, nb_addr));
            let copy = self.alloc_lines(m, w, tid, 1)?;
            self.write_node(m, w, copy, next, seq, key, &val, vlen == TOMBSTONE);
            links.push((nb_addr, copy));
        }
        if !links.is_empty() {
            w.durability_fence(m);
            // Last link per bucket wins (it chains to the earlier ones).
            for (slot, node) in &links {
                w.write_u64(m, *slot, *node, Category::UserData);
            }
            w.durability_fence(m);
        }
        Ok(())
    }

    /// Help the resize along: migrate up to `MIGRATE_BATCH` buckets at
    /// the watermark plus (if given) the bucket `hash` routes to, then
    /// advance the watermark / finish the resize.
    fn help_migrate(
        &mut self,
        m: &mut Machine,
        w: &mut PmWriter,
        tid: Tid,
        hash: Option<u64>,
    ) -> Result<(), DsError> {
        if m.load_u64(tid, self.head + H_NEW_DIR) == 0 {
            return Ok(());
        }
        let nb = m.load_u64(tid, self.head + H_NBUCKETS);
        let mut migrated = m.load_u64(tid, self.head + H_MIGRATED);
        // The contiguous watermark batch.
        let batch_end = (migrated + MIGRATE_BATCH).min(nb);
        // Make sure the key's own bucket is covered this round, so the
        // caller can insert into the new directory immediately.
        let own = hash.map(|h| h % nb);
        for b in migrated..batch_end {
            self.migrate_bucket(m, w, tid, b)?;
        }
        if let Some(own_b) = own {
            if own_b >= batch_end {
                self.migrate_bucket(m, w, tid, own_b)?;
                // Out-of-order single bucket: copies are durable and
                // idempotent, but the watermark can only advance
                // contiguously, so it stays put. The caller still
                // can't use the new bucket (route() follows the
                // watermark); migrate everything up to it instead.
                for b in batch_end..own_b {
                    self.migrate_bucket(m, w, tid, b)?;
                }
                migrated = own_b + 1;
            } else {
                migrated = batch_end;
            }
        } else {
            migrated = batch_end;
        }
        // Watermark epoch: a single header-line store after the copies
        // fenced.
        w.write_u64(m, self.head + H_MIGRATED, migrated, Category::AppMeta);
        w.durability_fence(m);
        if migrated == nb {
            // Finish: swing the directory. DIR..MIGRATED are
            // contiguous, so the whole transition is one store —
            // atomic even against a mid-epoch crash snapshot.
            let new_dir = m.load_u64(tid, self.head + H_NEW_DIR);
            let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
            let mut buf = Vec::with_capacity(40);
            buf.extend_from_slice(&new_dir.to_le_bytes()); // DIR
            buf.extend_from_slice(&new_nb.to_le_bytes()); // NBUCKETS
            buf.extend_from_slice(&0u64.to_le_bytes()); // NEW_DIR
            buf.extend_from_slice(&0u64.to_le_bytes()); // NEW_NBUCKETS
            buf.extend_from_slice(&0u64.to_le_bytes()); // MIGRATED
            w.write(m, self.head + H_DIR, &buf, Category::AppMeta);
            w.durability_fence(m);
        }
        Ok(())
    }

    /// Begin a resize to double the bucket count, if none is active
    /// and the arena can hold the new directory.
    fn maybe_start_resize(&mut self, m: &mut Machine, tid: Tid) -> Result<(), DsError> {
        if m.load_u64(tid, self.head + H_NEW_DIR) != 0 {
            return Ok(());
        }
        let nb = m.load_u64(tid, self.head + H_NBUCKETS);
        if self.count <= GROW_NUM * nb {
            return Ok(());
        }
        let new_nb = nb * 2;
        let mut w = PmWriter::new(tid);
        let dir_lines = (new_nb * 8).div_ceil(64);
        let new_dir = match self.alloc_lines(m, &mut w, tid, dir_lines) {
            Ok(a) => a,
            // Out of arena: keep serving with longer chains.
            Err(DsError::Full { .. }) => return Ok(()),
            Err(e) => return Err(e),
        };
        // NEW_DIR..MIGRATED are contiguous: the start transition is
        // one store, atomic at any crash point.
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(&new_dir.to_le_bytes());
        buf.extend_from_slice(&new_nb.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        w.write(m, self.head + H_NEW_DIR, &buf, Category::AppMeta);
        w.durability_fence(m);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)] // writer + machine plumbing
    fn write_node(
        &self,
        m: &mut Machine,
        w: &mut PmWriter,
        node: Addr,
        next: Addr,
        seq: u64,
        key: &[u8],
        val: &[u8],
        tombstone: bool,
    ) {
        let vlen = if tombstone {
            TOMBSTONE
        } else {
            val.len() as u32
        };
        let mut line = Vec::with_capacity(N_PAYLOAD as usize + key.len() + val.len());
        line.extend_from_slice(&next.to_le_bytes());
        line.extend_from_slice(&seq.to_le_bytes());
        line.extend_from_slice(&(key.len() as u32).to_le_bytes());
        line.extend_from_slice(&vlen.to_le_bytes());
        line.extend_from_slice(key);
        line.extend_from_slice(val);
        w.write(m, node, &line, Category::UserData);
    }

    /// The version-prepend shared by upsert and remove.
    #[allow(clippy::too_many_arguments)]
    fn put_version(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        slot: u32,
        seq: u64,
        key: &[u8],
        val: &[u8],
        tombstone: bool,
    ) -> Result<bool, DsError> {
        self.check_slot(slot)?;
        assert!(seq != 0, "sequence tags start at 1");
        if key.len() + val.len() > CHASH_MAX_ITEM {
            return Err(DsError::TooLarge {
                len: key.len() + val.len(),
            });
        }
        let hash = fnv1a(key);
        let mut w = PmWriter::new(tid);
        self.maybe_start_resize(m, tid)?;
        self.help_migrate(m, &mut w, tid, Some(hash))?;

        let (dir, b) = self.route(m, tid, hash);
        let bucket = dir + b * 8;
        let prior = self.find_in_bucket(m, tid, bucket, key);
        let existed = prior != 0 && m.load_u32(tid, prior + N_VLEN) != TOMBSTONE;

        // Prepare epoch: node line + cursor bump + announce, one fence.
        let head = m.load_u64(tid, bucket);
        let node = self.alloc_lines(m, &mut w, tid, 1)?;
        self.write_node(m, &mut w, node, head, seq, key, val, tombstone);
        let ann = self.announce_addr(slot);
        let mut a = Vec::with_capacity(24);
        a.extend_from_slice(&STATE_PENDING.to_le_bytes());
        a.extend_from_slice(&node.to_le_bytes());
        a.extend_from_slice(&seq.to_le_bytes());
        w.write(m, ann, &a, Category::AppMeta);
        w.durability_fence(m);

        // Link epoch: one bucket-head store publishes the version.
        w.write_u64(m, bucket, node, Category::UserData);
        w.durability_fence(m);

        // Retire epoch.
        w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
        w.durability_fence(m);

        if tombstone {
            self.count = self.count.saturating_sub(u64::from(existed));
        } else {
            self.count += u64::from(!existed);
        }
        Ok(!existed)
    }

    /// Insert or replace `key`, tagging the version with the non-zero
    /// application sequence `seq`. Returns `true` if the key was new.
    ///
    /// # Errors
    ///
    /// [`DsError::BadSlot`], [`DsError::TooLarge`], or
    /// [`DsError::Full`] when the arena is exhausted.
    pub fn upsert(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        slot: u32,
        seq: u64,
        key: &[u8],
        val: &[u8],
    ) -> Result<bool, DsError> {
        self.put_version(m, tid, slot, seq, key, val, false)
    }

    /// Remove `key` (links a tombstone version). Returns whether the
    /// key was present.
    ///
    /// # Errors
    ///
    /// Same as [`CHash::upsert`].
    pub fn remove(
        &mut self,
        m: &mut Machine,
        tid: Tid,
        slot: u32,
        seq: u64,
        key: &[u8],
    ) -> Result<bool, DsError> {
        Ok(!self.put_version(m, tid, slot, seq, key, &[], true)?)
    }

    /// Look up `key`. During a resize a not-yet-migrated bucket is
    /// consulted in the old directory, so reads never block on the
    /// migration.
    pub fn get(&self, m: &mut Machine, tid: Tid, key: &[u8]) -> Option<Vec<u8>> {
        let hash = fnv1a(key);
        let (dir, b) = self.route(m, tid, hash);
        let node = self.find_in_bucket(m, tid, dir + b * 8, key);
        if node == 0 {
            return None;
        }
        let vlen = m.load_u32(tid, node + N_VLEN);
        if vlen == TOMBSTONE {
            return None;
        }
        Some(m.load_vec(tid, node + N_PAYLOAD + key.len() as u64, vlen as usize))
    }

    /// Live (non-tombstoned) key count — a full scan; the cheap
    /// volatile estimate drives resizing instead.
    pub fn live_count(&self, m: &mut Machine, tid: Tid) -> u64 {
        let mut n = 0;
        self.for_each(m, tid, |_, _| n += 1);
        n
    }

    /// Visit the newest live version of every key.
    pub fn for_each(&self, m: &mut Machine, tid: Tid, mut f: impl FnMut(&[u8], &[u8])) {
        let dir = m.load_u64(tid, self.head + H_DIR);
        let nb = m.load_u64(tid, self.head + H_NBUCKETS);
        let new_dir = m.load_u64(tid, self.head + H_NEW_DIR);
        let migrated = if new_dir == 0 {
            0
        } else {
            m.load_u64(tid, self.head + H_MIGRATED)
        };
        let visit_chain = |m: &mut Machine, head_slot: Addr, f: &mut dyn FnMut(&[u8], &[u8])| {
            let mut seen: Vec<Vec<u8>> = Vec::new();
            let mut node = m.load_u64(tid, head_slot);
            while node != 0 {
                let klen = m.load_u32(tid, node + N_KLEN) as usize;
                let key = m.load_vec(tid, node + N_PAYLOAD, klen);
                if !seen.contains(&key) {
                    let vlen = m.load_u32(tid, node + N_VLEN);
                    if vlen != TOMBSTONE {
                        let v = m.load_vec(tid, node + N_PAYLOAD + klen as u64, vlen as usize);
                        f(&key, &v);
                    }
                    seen.push(key);
                }
                node = m.load_u64(tid, node + N_NEXT);
            }
        };
        if new_dir != 0 {
            let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
            for b in 0..new_nb {
                // Keys in the new directory are exactly those whose old
                // bucket is below the watermark.
                let mut g = |k: &[u8], v: &[u8]| {
                    if fnv1a(k) % nb < migrated {
                        f(k, v);
                    }
                };
                visit_chain(m, new_dir + b * 8, &mut g);
            }
        }
        for b in migrated..nb {
            visit_chain(m, dir + b * 8, &mut f);
        }
    }

    /// Resolve in-flight operations after a crash: roll forward
    /// prepared-but-unlinked versions, detect completed ones, discard
    /// torn preparations, and repair the allocation cursor. Idempotent.
    pub fn recover(&mut self, m: &mut Machine, tid: Tid) -> HashRecovery {
        let mut report = HashRecovery::default();
        let mut w = PmWriter::new(tid);

        // Repair the cursor first: it must clear every reachable node
        // and both directories.
        let arena = self.arena();
        let mut cursor = m.load_u64(tid, self.head + H_CURSOR);
        let clear = |addr: Addr, lines: u64, cursor: &mut u64| {
            if addr != 0 {
                *cursor = (*cursor).max((addr - arena) / 64 + lines);
            }
        };
        let dir = m.load_u64(tid, self.head + H_DIR);
        let nb = m.load_u64(tid, self.head + H_NBUCKETS);
        clear(dir, (nb * 8).div_ceil(64), &mut cursor);
        let new_dir = m.load_u64(tid, self.head + H_NEW_DIR);
        if new_dir != 0 {
            let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
            clear(new_dir, (new_nb * 8).div_ceil(64), &mut cursor);
        }
        let walk_dir = |m: &mut Machine, d: Addr, n: u64, cursor: &mut u64| {
            for b in 0..n {
                let mut node = m.load_u64(tid, d + b * 8);
                while node != 0 {
                    clear(node, 1, cursor);
                    node = m.load_u64(tid, node + N_NEXT);
                }
            }
        };
        walk_dir(m, dir, nb, &mut cursor);
        if new_dir != 0 {
            let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
            walk_dir(m, new_dir, new_nb, &mut cursor);
        }

        for slot in 0..self.slots as u32 {
            let ann = self.announce_addr(slot);
            if m.load_u64(tid, ann + A_STATE) != STATE_PENDING {
                continue;
            }
            let node = m.load_u64(tid, ann + A_NODE);
            let seq = m.load_u64(tid, ann + A_SEQ);
            let valid = seq != 0 && node != 0 && m.load_u64(tid, node + N_SEQ) == seq;
            let fate = if !valid {
                HashOpFate::Discarded
            } else {
                let klen = m.load_u32(tid, node + N_KLEN) as usize;
                let key = m.load_vec(tid, node + N_PAYLOAD, klen);
                let hash = fnv1a(&key);
                let (d, b) = self.route(m, tid, hash);
                let bucket = d + b * 8;
                // Linked iff it is on its bucket chain.
                let mut cur = m.load_u64(tid, bucket);
                let mut linked = false;
                while cur != 0 {
                    if cur == node {
                        linked = true;
                        break;
                    }
                    cur = m.load_u64(tid, cur + N_NEXT);
                }
                if linked {
                    HashOpFate::Completed
                } else {
                    // Roll forward: re-prepend (the node's stored next
                    // may be stale only if another version linked
                    // after it was prepared — impossible, the slot
                    // owner had at most one op in flight and other
                    // slots' links happened before this prepare).
                    clear(node, 1, &mut cursor);
                    let head = m.load_u64(tid, bucket);
                    w.write_u64(m, node + N_NEXT, head, Category::UserData);
                    w.durability_fence(m);
                    w.write_u64(m, bucket, node, Category::UserData);
                    w.durability_fence(m);
                    HashOpFate::RolledForward
                }
            };
            w.write_u64(m, ann + A_STATE, STATE_DONE, Category::AppMeta);
            report.ops.push((slot, seq, fate));
        }
        w.write_u64(m, self.head + H_CURSOR, cursor, Category::AllocMeta);
        w.durability_fence(m);
        self.count = self.live_count(m, tid);
        report
    }

    /// Current bucket count (the new directory's during a resize).
    pub fn nbuckets(&self, m: &mut Machine, tid: Tid) -> u64 {
        let new_nb = m.load_u64(tid, self.head + H_NEW_NBUCKETS);
        if new_nb != 0 {
            new_nb
        } else {
            m.load_u64(tid, self.head + H_NBUCKETS)
        }
    }

    /// Whether a resize is in progress.
    pub fn resizing(&self, m: &mut Machine, tid: Tid) -> bool {
        m.load_u64(tid, self.head + H_NEW_DIR) != 0
    }

    /// The volatile live-key estimate.
    pub fn estimated_len(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{CrashCounter, CrashPlan, CrashSpec, MachineConfig};

    const TID: Tid = Tid(0);

    fn region(m: &Machine) -> AddrRange {
        AddrRange::new(m.config().map.pm.base, CHash::region_bytes(4, 4096))
    }

    fn setup() -> (Machine, CHash) {
        let mut m = Machine::new(MachineConfig::asplos17());
        let r = region(&m);
        let t = CHash::create(&mut m, TID, r, 4, 4).unwrap();
        (m, t)
    }

    fn model_check(
        m: &mut Machine,
        t: &CHash,
        model: &std::collections::BTreeMap<Vec<u8>, Vec<u8>>,
    ) {
        for (k, v) in model {
            assert_eq!(t.get(m, TID, k).as_deref(), Some(&v[..]), "key {k:?}");
        }
        let mut seen = 0;
        t.for_each(m, TID, |k, v| {
            assert_eq!(model.get(k).map(|v| &v[..]), Some(v), "scan key {k:?}");
            seen += 1;
        });
        assert_eq!(seen, model.len(), "scan cardinality");
    }

    #[test]
    fn upsert_get_remove_round_trip() {
        let (mut m, mut t) = setup();
        assert!(t.upsert(&mut m, TID, 0, 1, b"k1", b"v1").unwrap());
        assert!(!t.upsert(&mut m, TID, 1, 2, b"k1", b"v2").unwrap());
        assert_eq!(t.get(&mut m, TID, b"k1").as_deref(), Some(&b"v2"[..]));
        assert!(t.remove(&mut m, TID, 2, 3, b"k1").unwrap());
        assert_eq!(t.get(&mut m, TID, b"k1"), None);
        assert!(!t.remove(&mut m, TID, 3, 4, b"k1").unwrap());
        // Reinsert after a tombstone works.
        assert!(t.upsert(&mut m, TID, 0, 5, b"k1", b"v3").unwrap());
        assert_eq!(t.get(&mut m, TID, b"k1").as_deref(), Some(&b"v3"[..]));
    }

    #[test]
    fn rejects_bad_slot_and_oversize() {
        let (mut m, mut t) = setup();
        assert!(matches!(
            t.upsert(&mut m, TID, 4, 1, b"k", b"v"),
            Err(DsError::BadSlot { slot: 4, slots: 4 })
        ));
        let big = vec![0u8; CHASH_MAX_ITEM];
        assert!(matches!(
            t.upsert(&mut m, TID, 0, 1, b"k", &big),
            Err(DsError::TooLarge { .. })
        ));
    }

    #[test]
    fn grows_through_multiple_resizes_without_losing_keys() {
        let (mut m, mut t) = setup();
        let mut model = std::collections::BTreeMap::new();
        // 4 initial buckets, grow threshold 2x: 60 keys force several
        // doublings, exercising migration from all four writer slots.
        for i in 0..60u64 {
            let k = format!("key-{i:03}").into_bytes();
            let v = format!("val-{i}").into_bytes();
            t.upsert(&mut m, TID, (i % 4) as u32, i + 1, &k, &v)
                .unwrap();
            model.insert(k, v);
        }
        assert!(t.nbuckets(&mut m, TID) > 4, "table never grew");
        // Updates and removes through and after the resizes.
        for i in (0..60u64).step_by(3) {
            let k = format!("key-{i:03}").into_bytes();
            if i % 2 == 0 {
                let v = format!("VAL-{i}").into_bytes();
                t.upsert(&mut m, TID, (i % 4) as u32, 100 + i, &k, &v)
                    .unwrap();
                model.insert(k, v);
            } else {
                t.remove(&mut m, TID, (i % 4) as u32, 100 + i, &k).unwrap();
                model.remove(&k);
            }
        }
        // Drive any in-flight migration to completion.
        let mut spins = 0;
        while t.resizing(&mut m, TID) {
            let mut w = PmWriter::new(TID);
            t.help_migrate(&mut m, &mut w, TID, None).unwrap();
            spins += 1;
            assert!(spins < 1000, "migration never finished");
        }
        model_check(&mut m, &t, &model);
    }

    #[test]
    fn reopen_after_clean_crash_preserves_contents() {
        let (mut m, mut t) = setup();
        for i in 0..20u64 {
            t.upsert(
                &mut m,
                TID,
                0,
                i + 1,
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
            )
            .unwrap();
        }
        let r = region(&m);
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut t2 = CHash::open(&mut m2, TID, r).unwrap();
        let report = t2.recover(&mut m2, TID);
        assert!(report.ops.is_empty());
        assert_eq!(t2.live_count(&mut m2, TID), 20);
        for i in 0..20u64 {
            assert_eq!(
                t2.get(&mut m2, TID, format!("k{i}").as_bytes()).as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
    }

    #[test]
    fn open_rejects_garbage() {
        let mut m = Machine::new(MachineConfig::asplos17());
        let r = region(&m);
        assert!(matches!(
            CHash::open(&mut m, TID, r),
            Err(DsError::BadHeader { .. })
        ));
    }

    /// Crash at every PM event of an in-flight upsert under the crash
    /// lattice: committed keys always readable, the in-flight key
    /// either wholly present or absent, recovery report says which.
    #[test]
    fn crash_at_every_point_of_an_upsert_is_detectable() {
        let mut rolled = 0u32;
        let mut discarded = 0u32;
        let (mut m, mut t) = setup();
        let r = region(&m);
        t.upsert(&mut m, TID, 0, 1, b"stable", b"old").unwrap();
        m.set_crash_plan(CrashPlan::at_points(
            CrashCounter::PmEvents,
            (1..=30).collect(),
        ));
        t.upsert(&mut m, TID, 1, 2, b"torn", b"new").unwrap();
        let states = m.take_crash_states();
        assert!(!states.is_empty());
        for state in &states {
            for spec in std::iter::once(CrashSpec::DropVolatile)
                .chain(std::iter::once(CrashSpec::PersistAll))
                .chain((1..=8).map(|seed| CrashSpec::Adversarial { seed }))
            {
                let img = state.materialize(spec);
                let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
                let mut t2 = CHash::open(&mut m2, TID, r).unwrap();
                let report = t2.recover(&mut m2, TID);
                assert_eq!(
                    t2.get(&mut m2, TID, b"stable").as_deref(),
                    Some(&b"old"[..]),
                    "{spec:?} at {}: committed key lost",
                    state.at()
                );
                let torn = t2.get(&mut m2, TID, b"torn");
                for (slot, seq, fate) in &report.ops {
                    assert_eq!((*slot, *seq), (1, 2));
                    match fate {
                        HashOpFate::RolledForward => {
                            rolled += 1;
                            assert_eq!(torn.as_deref(), Some(&b"new"[..]));
                        }
                        HashOpFate::Discarded => {
                            discarded += 1;
                            assert_eq!(torn, None);
                        }
                        HashOpFate::Completed => {
                            assert_eq!(torn.as_deref(), Some(&b"new"[..]));
                        }
                    }
                }
                // Post-recovery the table accepts writes.
                t2.upsert(&mut m2, TID, 0, 50, b"post", b"ok").unwrap();
                assert_eq!(t2.get(&mut m2, TID, b"post").as_deref(), Some(&b"ok"[..]));
            }
        }
        assert!(rolled > 0, "no prepared-but-unlinked op rolled forward");
        assert!(discarded > 0, "no torn preparation discarded");
    }

    /// Crash mid-migration at many points: after reopening, every key
    /// is intact regardless of where the copy/watermark/swing stood.
    #[test]
    fn crash_mid_resize_never_loses_keys() {
        let mut model = std::collections::BTreeMap::new();
        let mut m = Machine::new(MachineConfig::asplos17());
        let r = region(&m);
        let mut t = CHash::create(&mut m, TID, r, 4, 4).unwrap();
        for i in 0..9u64 {
            let k = format!("k{i}").into_bytes();
            let v = format!("v{i}").into_bytes();
            t.upsert(&mut m, TID, (i % 4) as u32, i + 1, &k, &v)
                .unwrap();
            model.insert(k, v);
        }
        // With 9 keys in 4 buckets the threshold (2x) is crossed: the
        // next insert starts the resize + migration; crash throughout.
        m.set_crash_plan(CrashPlan::at_points(
            CrashCounter::PmEvents,
            (1..=200).collect(),
        ));
        let k9 = b"k-final".to_vec();
        t.upsert(&mut m, TID, 0, 99, &k9, b"v-final").unwrap();
        let states = m.take_crash_states();
        let mid_resize = states
            .iter()
            .filter(|s| {
                let img = s.materialize(CrashSpec::PersistAll);
                let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
                let t2 = CHash::open(&mut m2, TID, r).unwrap();
                t2.resizing(&mut m2, TID)
            })
            .count();
        assert!(mid_resize > 0, "sweep never caught the resize in flight");
        for state in &states {
            for spec in [
                CrashSpec::DropVolatile,
                CrashSpec::PersistAll,
                CrashSpec::Adversarial { seed: 5 },
            ] {
                let img = state.materialize(spec);
                let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
                let mut t2 = CHash::open(&mut m2, TID, r).unwrap();
                t2.recover(&mut m2, TID);
                for (k, v) in &model {
                    assert_eq!(
                        t2.get(&mut m2, TID, k).as_deref(),
                        Some(&v[..]),
                        "{spec:?} at {}: lost {k:?} mid-resize",
                        state.at()
                    );
                }
                // And the table still functions (including finishing
                // the interrupted migration).
                t2.upsert(&mut m2, TID, 2, 500, b"after", b"crash").unwrap();
                assert_eq!(
                    t2.get(&mut m2, TID, b"after").as_deref(),
                    Some(&b"crash"[..])
                );
            }
        }
    }

    #[test]
    fn recovery_is_idempotent() {
        let (mut m, mut t) = setup();
        let r = region(&m);
        t.upsert(&mut m, TID, 0, 1, b"x", b"y").unwrap();
        let img = m.crash(CrashSpec::DropVolatile);
        let mut m2 = Machine::from_image(MachineConfig::asplos17(), &img);
        let mut t2 = CHash::open(&mut m2, TID, r).unwrap();
        t2.recover(&mut m2, TID);
        let again = t2.recover(&mut m2, TID);
        assert!(again.ops.is_empty());
        assert_eq!(t2.get(&mut m2, TID, b"x").as_deref(), Some(&b"y"[..]));
    }
}
