//! Concurrency tests: recording from many threads must lose nothing,
//! and per-worker snapshots must merge to the same totals as one shared
//! registry — the property the parallel suite runner relies on.

use pmobs::{MetricsSnapshot, Registry, Unit};

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn shared_registry_loses_no_updates() {
    let reg = Registry::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = &reg;
            s.spawn(move || {
                let c = reg.counter("ops");
                let h = reg.histogram("latency", Unit::Nanos);
                let g = reg.gauge("high");
                for i in 0..OPS {
                    c.inc();
                    h.record(i);
                    g.observe(t as u64 * OPS + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    let n = THREADS as u64 * OPS;
    assert_eq!(snap.counters["ops"], n);
    assert_eq!(snap.histograms["latency"].count, n);
    // Every thread records 0..OPS, so the sum is THREADS * sum(0..OPS).
    assert_eq!(
        snap.histograms["latency"].sum,
        THREADS as u64 * (OPS * (OPS - 1) / 2)
    );
    assert_eq!(snap.histograms["latency"].min, Some(0));
    assert_eq!(snap.histograms["latency"].max, Some(OPS - 1));
    assert_eq!(snap.gauges["high"], THREADS as u64 * OPS - 1);
}

#[test]
fn per_worker_snapshots_merge_to_shared_totals() {
    // One registry per worker (as if each suite worker were its own
    // process), merged afterwards...
    let per_worker: Vec<MetricsSnapshot> = (0..THREADS)
        .map(|t| {
            let reg = Registry::new();
            let h = reg.histogram("latency", Unit::Nanos);
            for i in 0..OPS {
                reg.counter("ops").inc();
                h.record(i * (t as u64 + 1));
                reg.gauge("high").observe(t as u64);
            }
            reg.snapshot()
        })
        .collect();
    let mut merged = MetricsSnapshot::default();
    for s in &per_worker {
        merged.merge(s);
    }

    // ...must equal one registry that saw every event.
    let shared = Registry::new();
    let h = shared.histogram("latency", Unit::Nanos);
    for t in 0..THREADS {
        for i in 0..OPS {
            shared.counter("ops").inc();
            h.record(i * (t as u64 + 1));
            shared.gauge("high").observe(t as u64);
        }
    }
    assert_eq!(merged, shared.snapshot());
}

#[test]
fn merge_is_associative_enough_for_tree_reduction() {
    // Merging pairwise then combining equals merging sequentially.
    let snaps: Vec<MetricsSnapshot> = (0..4u64)
        .map(|t| {
            let reg = Registry::new();
            reg.counter("c").add(t + 1);
            reg.histogram("h", Unit::Count).record(1 << t);
            reg.snapshot()
        })
        .collect();
    let mut seq = MetricsSnapshot::default();
    for s in &snaps {
        seq.merge(s);
    }
    let mut left = snaps[0].clone();
    left.merge(&snaps[1]);
    let mut right = snaps[2].clone();
    right.merge(&snaps[3]);
    left.merge(&right);
    assert_eq!(seq, left);
}
