//! Simulated-time causal tracing.
//!
//! Where [`metrics`](crate::metrics) aggregates *how much* (counters,
//! histograms), this module records *what happened when*: typed events
//! with span/parent ids on named tracks, timestamped on the
//! **simulated** clock only. That single clock-domain rule is what
//! makes traces reproducible: a trace of a seeded run is bit-identical
//! whatever the host, the wall-clock, or the `--parallel` worker count,
//! because no event ever carries host time.
//!
//! # Pieces
//!
//! * [`TraceEvent`] — one begin/end/instant/counter record. Begin/end
//!   pairs form spans; each begin gets a track-local span id and the id
//!   of the enclosing span as its parent (causality without pointers).
//! * [`TraceSink`] — a bounded per-owner event buffer (a machine, a
//!   replay thread, a serve shard each own one). Sinks are filled
//!   single-threaded by their owner and submit to a global collector
//!   when dropped; the merge sorts tracks by name, so the collected
//!   order is independent of which worker thread finished first.
//! * [`take_tracks`] / [`export_chrome`] — drain the collector into a
//!   deterministic track list and serialize it as Chrome trace-event
//!   JSON (loads in Perfetto / `chrome://tracing`; one thread lane per
//!   track).
//!
//! # Non-perturbation contract
//!
//! Like metric recording, tracing is **off by default** behind one
//! relaxed [`AtomicBool`] ([`enabled`]); a disabled run pays one
//! relaxed load per would-be sink creation and nothing per event.
//! Sinks never touch the simulated clock, the recorded trace, or any
//! RNG — they only *read* clocks the simulation already computed — so
//! enabling tracing cannot change a single simulated outcome. The
//! `whisper` crate's `obs_equivalence` test extends to this flag.
//!
//! # Overhead policy
//!
//! Every sink is bounded ([`DEFAULT_CAPACITY`] events). At capacity,
//! new begins are *suppressed in balance*: the begin is dropped and a
//! depth counter ensures its matching end is dropped too, so an
//! exported track always has balanced begin/end events. Instants and
//! counter samples at capacity are simply dropped. Drops are counted
//! per track and exported in the track metadata.
//!
//! # Track naming
//!
//! Deterministic output requires deterministic track names, including
//! when the same code runs several times (two machines per sim app,
//! six replays per Figure 10 cluster). Owners therefore name sinks
//! through a thread-local [`context`]: `context("exim")` scopes a
//! logical run, and each [`sink`]`("memsim")` call inside it yields
//! `exim/memsim/0`, `exim/memsim/1`, … — a per-context, per-kind
//! sequence number instead of anything address- or thread-derived.
//! [`sink_named`] bypasses the context for owners that already have a
//! globally unique name (serve shard queues). [`suppress`] turns sink
//! creation off for a scope (the serving engine's calibration runs,
//! which would otherwise trace every shard's warm-up).

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether trace recording is on — one relaxed atomic load, mirroring
/// [`crate::enabled`]. Off by default.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn trace recording on or off process-wide. Sinks check the flag
/// at creation time, so toggling affects machines/replays constructed
/// afterwards.
pub fn set_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Default per-sink event capacity (see the overhead policy above).
pub const DEFAULT_CAPACITY: usize = 262_144;

/// What one [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opens (gets a fresh span id; parent = enclosing span).
    Begin,
    /// The innermost open span closes.
    End,
    /// A point event.
    Instant,
    /// A sampled value (e.g. persist-buffer occupancy).
    Counter,
}

/// One trace record. `at_ns` is **always** simulated time — the one
/// rule that keeps traces deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated timestamp (ns).
    pub at_ns: u64,
    /// Event kind.
    pub phase: Phase,
    /// Event name (span name for Begin/End).
    pub name: &'static str,
    /// Track-local span id (Begin/End), 0 otherwise.
    pub span: u32,
    /// Span id of the enclosing span at Begin time; 0 = root.
    pub parent: u32,
    /// Payload: drained lines, stall ns, queue wait, sampled value…
    pub value: u64,
}

/// A finished track: one named event lane, plus how many events the
/// capacity bound dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Unique track name (see the naming rules in the module docs).
    pub name: String,
    /// Events in emission order (timestamps are non-decreasing as long
    /// as the owner's clock is monotone, which every simulated clock
    /// in this workspace is).
    pub events: Vec<TraceEvent>,
    /// Events dropped by the capacity bound.
    pub dropped: u64,
}

/// A bounded, single-owner event buffer for one track.
///
/// Created through [`sink`] / [`sink_named`] (which return `None` when
/// tracing is disabled or suppressed, so the disabled path allocates
/// nothing). On drop, any still-open spans are closed at the last seen
/// timestamp and the track submits itself to the global collector.
#[derive(Debug)]
pub struct TraceSink {
    name: String,
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Open spans: (span id, name), innermost last.
    stack: Vec<(u32, &'static str)>,
    next_span: u32,
    /// Depth of begins suppressed by the capacity bound; their matching
    /// ends are swallowed to keep the track balanced.
    suppressed: u32,
    dropped: u64,
    last_ns: u64,
}

impl TraceSink {
    /// A sink with the default capacity. Prefer [`sink`]/[`sink_named`];
    /// this constructor exists for owners that derive per-thread names
    /// from a base captured at construction (the hops replayer).
    pub fn new(name: String) -> TraceSink {
        TraceSink {
            name,
            events: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            stack: Vec::new(),
            next_span: 0,
            suppressed: 0,
            dropped: 0,
            last_ns: 0,
        }
    }

    /// The track name this sink will submit under.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, ev: TraceEvent) {
        self.last_ns = self.last_ns.max(ev.at_ns);
        self.events.push(ev);
    }

    /// Open a span at simulated time `at_ns`. `value` is a free payload
    /// (0 when there is nothing to say).
    pub fn begin(&mut self, name: &'static str, at_ns: u64, value: u64) {
        if self.suppressed > 0 || self.events.len() >= self.capacity {
            self.suppressed += 1;
            self.dropped += 1;
            return;
        }
        self.next_span += 1;
        let span = self.next_span;
        let parent = self.stack.last().map(|&(id, _)| id).unwrap_or(0);
        self.stack.push((span, name));
        self.push(TraceEvent {
            at_ns,
            phase: Phase::Begin,
            name,
            span,
            parent,
            value,
        });
    }

    /// Close the innermost open span at simulated time `at_ns`. Ends
    /// are emitted even at capacity so begin/end stay balanced; an end
    /// whose begin was suppressed is swallowed instead.
    pub fn end(&mut self, at_ns: u64) {
        if self.suppressed > 0 {
            self.suppressed -= 1;
            return;
        }
        let Some((span, name)) = self.stack.pop() else {
            return;
        };
        self.push(TraceEvent {
            at_ns,
            phase: Phase::End,
            name,
            span,
            parent: 0,
            value: 0,
        });
    }

    /// Record a point event.
    pub fn instant(&mut self, name: &'static str, at_ns: u64, value: u64) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let parent = self.stack.last().map(|&(id, _)| id).unwrap_or(0);
        self.push(TraceEvent {
            at_ns,
            phase: Phase::Instant,
            name,
            span: 0,
            parent,
            value,
        });
    }

    /// Sample a counter series (occupancy, depth, …).
    pub fn counter(&mut self, name: &'static str, at_ns: u64, value: u64) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.push(TraceEvent {
            at_ns,
            phase: Phase::Counter,
            name,
            span: 0,
            parent: 0,
            value,
        });
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        // Close anything left open at the last seen timestamp so the
        // exported track is balanced even if the owner stopped mid-span
        // (a crash-interrupted machine, an abandoned replay).
        while !self.stack.is_empty() {
            let at = self.last_ns;
            self.end(at);
        }
        if self.events.is_empty() && self.dropped == 0 {
            return;
        }
        collector()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Track {
                name: std::mem::take(&mut self.name),
                events: std::mem::take(&mut self.events),
                dropped: self.dropped,
            });
    }
}

fn collector() -> &'static Mutex<Vec<Track>> {
    static COLLECTOR: OnceLock<Mutex<Vec<Track>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CONTEXT: RefCell<Option<CtxState>> = const { RefCell::new(None) };
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

struct CtxState {
    label: String,
    /// Per-kind sequence numbers: the `N` in `ctx/kind/N`.
    seqs: HashMap<String, u32>,
}

/// Scope a logical run for track naming (see the module docs). Guards
/// nest: a context entered inside another extends its label with
/// `outer/inner`. Dropping the guard restores the previous context.
pub fn context(label: &str) -> ContextGuard {
    CONTEXT.with(|c| {
        let mut slot = c.borrow_mut();
        let prev = slot.take();
        let full = match &prev {
            Some(p) => format!("{}/{label}", p.label),
            None => label.to_string(),
        };
        *slot = Some(CtxState {
            label: full,
            seqs: HashMap::new(),
        });
        ContextGuard { prev }
    })
}

/// RAII guard restoring the previous naming context (see [`context`]).
pub struct ContextGuard {
    prev: Option<CtxState>,
}

impl std::fmt::Debug for ContextGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ContextGuard")
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Suppress sink creation on this thread for the guard's lifetime —
/// used around runs whose traces would be noise (the serving engine's
/// calibration replays).
pub fn suppress() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard(())
}

/// RAII guard re-allowing sink creation (see [`suppress`]).
#[derive(Debug)]
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get() - 1));
    }
}

fn suppressed() -> bool {
    SUPPRESS.with(Cell::get) > 0
}

/// Whether a sink created right now would record: tracing enabled and
/// not suppressed on this thread. Lets callers skip building track
/// names on the disabled path.
pub fn active() -> bool {
    enabled() && !suppressed()
}

/// The track name a [`sink`] of this `kind` would get in the current
/// context — `ctx/kind/N` with the per-context sequence number bumped —
/// or `None` when tracing is off, suppressed, or no context is
/// installed. Owners that fan one logical track out into per-thread
/// sub-tracks (the hops replayer) take the base name here and append
/// their own suffixes.
pub fn track_base(kind: &str) -> Option<String> {
    if !active() {
        return None;
    }
    CONTEXT.with(|c| {
        let mut slot = c.borrow_mut();
        let ctx = slot.as_mut()?;
        let seq = ctx.seqs.entry(kind.to_string()).or_insert(0);
        let name = format!("{}/{kind}/{seq}", ctx.label);
        *seq += 1;
        Some(name)
    })
}

/// A sink named through the current [`context`] (`ctx/kind/N`), or
/// `None` when tracing is off, suppressed, or there is no context.
pub fn sink(kind: &str) -> Option<TraceSink> {
    track_base(kind).map(TraceSink::new)
}

/// A sink with an explicit globally-unique name, bypassing the context
/// (serve shard queues name themselves `serve/app/model/shardN`).
/// `None` when tracing is off or suppressed.
pub fn sink_named(name: String) -> Option<TraceSink> {
    if !active() {
        return None;
    }
    Some(TraceSink::new(name))
}

/// Drain every submitted track and return them sorted by name — the
/// deterministic merge: sinks submit in whatever order worker threads
/// drop them, but track names are unique by construction, so the
/// sorted list (and everything exported from it) is bit-identical
/// across `--parallel` settings.
pub fn take_tracks() -> Vec<Track> {
    let mut tracks = std::mem::take(
        &mut *collector()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    tracks.sort_by(|a, b| a.name.cmp(&b.name));
    tracks
}

/// Serialize tracks as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form; loads in Perfetto and
/// `chrome://tracing`). One `tid` lane per track, named via `M`
/// metadata events; timestamps are microseconds (the format's unit)
/// derived exactly as `ns / 1000.0`, so the document is as
/// deterministic as the events.
pub fn export_chrome(tracks: &[Track]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (i, track) in tracks.iter().enumerate() {
        let tid = i as u64 + 1;
        events.push(
            Json::obj()
                .field("ph", "M")
                .field("name", "thread_name")
                .field("pid", 1u64)
                .field("tid", tid)
                .field(
                    "args",
                    Json::obj()
                        .field("name", track.name.as_str())
                        .field("dropped", track.dropped),
                ),
        );
        for ev in &track.events {
            let ts = ev.at_ns as f64 / 1000.0;
            let base = Json::obj();
            let e = match ev.phase {
                Phase::Begin => base
                    .field("ph", "B")
                    .field("name", ev.name)
                    .field("pid", 1u64)
                    .field("tid", tid)
                    .field("ts", ts)
                    .field(
                        "args",
                        Json::obj()
                            .field("span", u64::from(ev.span))
                            .field("parent", u64::from(ev.parent))
                            .field("value", ev.value),
                    ),
                Phase::End => base
                    .field("ph", "E")
                    .field("name", ev.name)
                    .field("pid", 1u64)
                    .field("tid", tid)
                    .field("ts", ts)
                    .field("args", Json::obj().field("span", u64::from(ev.span))),
                Phase::Instant => base
                    .field("ph", "i")
                    .field("name", ev.name)
                    .field("pid", 1u64)
                    .field("tid", tid)
                    .field("ts", ts)
                    .field("s", "t")
                    .field("args", Json::obj().field("value", ev.value)),
                Phase::Counter => base
                    .field("ph", "C")
                    .field("name", ev.name)
                    .field("pid", 1u64)
                    .field("tid", tid)
                    .field("ts", ts)
                    .field("args", Json::obj().field("value", ev.value)),
            };
            events.push(e);
        }
    }
    Json::obj()
        .field("displayTimeUnit", "ns")
        .field("traceEvents", events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-wide flag and collector; serialize them
    /// and leave both clean.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_means_no_sinks() {
        let _l = trace_lock();
        set_enabled(false);
        let _ctx = context("off");
        assert!(sink("memsim").is_none());
        assert!(sink_named("x".into()).is_none());
        assert!(!active());
    }

    #[test]
    fn context_sequences_and_nesting() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let _ctx = context("app");
            assert_eq!(track_base("memsim").as_deref(), Some("app/memsim/0"));
            assert_eq!(track_base("memsim").as_deref(), Some("app/memsim/1"));
            assert_eq!(track_base("hops").as_deref(), Some("app/hops/0"));
            {
                let _inner = context("cal");
                assert_eq!(track_base("memsim").as_deref(), Some("app/cal/memsim/0"));
            }
            assert_eq!(track_base("memsim").as_deref(), Some("app/memsim/2"));
        }
        // No context: context-scoped sinks refuse, named sinks work.
        assert!(sink("memsim").is_none());
        assert!(sink_named("explicit".into()).is_some());
        set_enabled(false);
        take_tracks();
    }

    #[test]
    fn suppress_guards_nest() {
        let _l = trace_lock();
        set_enabled(true);
        let _ctx = context("app");
        {
            let _s1 = suppress();
            let _s2 = suppress();
            assert!(sink("memsim").is_none());
            assert!(sink_named("x".into()).is_none());
        }
        assert!(sink("memsim").is_some());
        set_enabled(false);
        take_tracks();
    }

    #[test]
    fn spans_link_parents_and_balance() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let mut s = sink_named("t".into()).unwrap();
            s.begin("outer", 10, 0);
            s.begin("inner", 20, 7);
            s.instant("mark", 25, 1);
            s.end(30);
            s.end(40);
        }
        set_enabled(false);
        let tracks = take_tracks();
        assert_eq!(tracks.len(), 1);
        let ev = &tracks[0].events;
        assert_eq!(ev.len(), 5);
        assert_eq!(
            (ev[0].phase, ev[0].span, ev[0].parent),
            (Phase::Begin, 1, 0)
        );
        assert_eq!(
            (ev[1].phase, ev[1].span, ev[1].parent),
            (Phase::Begin, 2, 1)
        );
        assert_eq!((ev[2].phase, ev[2].parent), (Phase::Instant, 2));
        assert_eq!(
            (ev[3].phase, ev[3].span, ev[3].name),
            (Phase::End, 2, "inner")
        );
        assert_eq!(
            (ev[4].phase, ev[4].span, ev[4].name),
            (Phase::End, 1, "outer")
        );
    }

    #[test]
    fn capacity_suppression_keeps_balance() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let mut s = sink_named("cap".into()).unwrap();
            s.capacity = 3;
            s.begin("a", 1, 0); // recorded
            s.begin("b", 2, 0); // recorded
            s.begin("c", 3, 0); // at capacity after this? events=2 -> recorded
            s.begin("d", 4, 0); // events=3 == cap -> suppressed
            s.instant("x", 5, 0); // dropped
            s.end(6); // matches suppressed d -> swallowed
            s.end(7); // closes c (past capacity, still emitted)
            s.end(8); // closes b
            s.end(9); // closes a
        }
        set_enabled(false);
        let tracks = take_tracks();
        let ev = &tracks[0].events;
        let begins = ev.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = ev.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, 3);
        assert_eq!(ends, 3, "suppressed begin's end swallowed, rest closed");
        assert_eq!(tracks[0].dropped, 2);
    }

    #[test]
    fn drop_closes_open_spans() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let mut s = sink_named("open".into()).unwrap();
            s.begin("never_closed", 100, 0);
            s.instant("late", 250, 0);
        }
        set_enabled(false);
        let tracks = take_tracks();
        let ev = &tracks[0].events;
        assert_eq!(ev.last().unwrap().phase, Phase::End);
        assert_eq!(ev.last().unwrap().at_ns, 250, "closed at last seen time");
    }

    #[test]
    fn take_tracks_sorts_by_name() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let mut b = sink_named("b".into()).unwrap();
            b.instant("x", 1, 0);
            let mut a = sink_named("a".into()).unwrap();
            a.instant("x", 1, 0);
        }
        set_enabled(false);
        let names: Vec<String> = take_tracks().into_iter().map(|t| t.name).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn chrome_export_shape() {
        let _l = trace_lock();
        set_enabled(true);
        {
            let mut s = sink_named("lane".into()).unwrap();
            s.begin("work", 1500, 3);
            s.counter("occ", 1600, 9);
            s.end(2500);
        }
        set_enabled(false);
        let tracks = take_tracks();
        let doc = export_chrome(&tracks);
        let parsed = crate::json::parse(&doc.to_compact()).unwrap();
        let evs = parsed.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(evs.len(), 4, "metadata + B + C + E");
        assert_eq!(evs[0].get("ph").and_then(|p| p.as_str()), Some("M"));
        assert_eq!(
            evs[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str()),
            Some("lane")
        );
        assert_eq!(evs[1].get("ph").and_then(|p| p.as_str()), Some("B"));
        assert_eq!(evs[1].get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(evs[3].get("ph").and_then(|p| p.as_str()), Some("E"));
        assert_eq!(evs[3].get("ts").and_then(Json::as_f64), Some(2.5));
    }
}
