//! `pmobs` — zero-dependency observability for the WHISPER stack.
//!
//! The paper's whole contribution is *measurement*: `PM_*` macros turn
//! application behaviour into an analyzable event stream. This crate is
//! the same idea applied to the harness itself — the simulator, the
//! HOPS persist buffers, the trace analyzer, and the suite driver all
//! record what they do, and `whisper-report --json` emits it in a
//! machine-readable report.
//!
//! Three parts:
//!
//! * [`metrics`] — named [`Counter`]s, high-water [`MaxGauge`]s, and
//!   log2-scaled [`Histogram`]s with relaxed-atomic recording and
//!   [mergeable snapshots](metrics::MetricsSnapshot::merge).
//! * [`span`] — RAII wall-clock timing plus an explicit channel for
//!   durations measured on the deterministic simulated clock; the two
//!   clock domains are kept in disjoint namespaces (`span.*` / `sim.*`).
//! * [`trace`] — simulated-time causal tracing: typed span/instant/
//!   counter events on named tracks, merged deterministically and
//!   exportable as Chrome trace-event JSON (Perfetto). Gated by its own
//!   flag ([`trace::enabled`]), off by default like metrics.
//! * [`json`] — a hand-rolled JSON/JSONL encoder and parser (the build
//!   environment has no serde), and [`logger`] — a leveled stderr
//!   logger so stdout can be reserved for machine-readable output.
//!
//! # Non-perturbation contract
//!
//! Recording is **off by default** and gated by one global flag
//! ([`enabled`], a relaxed atomic load — the only cost instrumentation
//! adds to a disabled fast path). Instruments never touch the simulated
//! clock, the trace, or any RNG, so enabling them cannot change a
//! single simulated outcome: an instrumented suite run produces
//! bit-identical traces and figures to an uninstrumented one. The
//! `whisper` crate's `obs_equivalence` integration test enforces this
//! contract.
//!
//! # Example
//!
//! ```
//! pmobs::set_enabled(true);
//! pmobs::count!("demo.requests");
//! pmobs::observe!("demo.latency_ns", pmobs::metrics::Unit::Nanos, 1500);
//! {
//!     let _span = pmobs::span!("demo.phase");
//!     // ... timed work ...
//! }
//! pmobs::set_enabled(false);
//! let snap = pmobs::global().snapshot();
//! assert_eq!(snap.counters["demo.requests"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod logger;
pub mod metrics;
pub mod span;
pub mod trace;

pub use json::Json;
pub use logger::Level;
pub use metrics::{Counter, Histogram, MaxGauge, MetricsSnapshot, Registry, Unit};
pub use span::{record_sim_ns, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on. One relaxed atomic load — cheap
/// enough for simulator fast paths; false unless someone opted in.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide default [`Registry`] that the recording macros and
/// spans feed.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Increment a counter in the [`global`] registry (no-op while
/// recording is disabled). The registry lookup is cached per call site.
///
/// ```
/// pmobs::count!("cache.miss");          // += 1
/// pmobs::count!("cache.bytes_in", 64);  // += n
/// ```
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static __PMOBS_C: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
                ::std::sync::OnceLock::new();
            __PMOBS_C
                .get_or_init(|| $crate::global().counter($name))
                .add($n);
        }
    };
}

/// Record a value into a histogram in the [`global`] registry (no-op
/// while recording is disabled). The registry lookup is cached per
/// call site.
///
/// ```
/// pmobs::observe!("fence.drained_lines", pmobs::Unit::Count, 3);
/// ```
#[macro_export]
macro_rules! observe {
    ($name:expr, $unit:expr, $v:expr) => {
        if $crate::enabled() {
            static __PMOBS_H: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            __PMOBS_H
                .get_or_init(|| $crate::global().histogram($name, $unit))
                .record($v);
        }
    };
}

/// Raise a high-water gauge in the [`global`] registry (no-op while
/// recording is disabled). The registry lookup is cached per call site.
///
/// ```
/// pmobs::high_water!("pb.occupancy", 12);
/// ```
#[macro_export]
macro_rules! high_water {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __PMOBS_G: ::std::sync::OnceLock<::std::sync::Arc<$crate::MaxGauge>> =
                ::std::sync::OnceLock::new();
            __PMOBS_G
                .get_or_init(|| $crate::global().gauge($name))
                .observe($v);
        }
    };
}

/// Start an RAII wall-clock span recording to `span.<name>[/<label>]`.
///
/// ```
/// let _span = pmobs::span!("analyze");
/// let _labeled = pmobs::span!("run", "echo");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::new($name, ::std::option::Option::None)
    };
    ($name:expr, $label:expr) => {
        $crate::SpanGuard::new($name, ::std::option::Option::Some($label))
    };
}

/// Log at error level (shown even under `--quiet`).
#[macro_export]
macro_rules! error {
    ($($a:tt)*) => { $crate::logger::log($crate::Level::Error, ::std::format_args!($($a)*)) };
}

/// Log at warn level.
#[macro_export]
macro_rules! warn {
    ($($a:tt)*) => { $crate::logger::log($crate::Level::Warn, ::std::format_args!($($a)*)) };
}

/// Log at info level (the default threshold).
#[macro_export]
macro_rules! info {
    ($($a:tt)*) => { $crate::logger::log($crate::Level::Info, ::std::format_args!($($a)*)) };
}

/// Log at debug level.
#[macro_export]
macro_rules! debug {
    ($($a:tt)*) => { $crate::logger::log($crate::Level::Debug, ::std::format_args!($($a)*)) };
}

/// Serializes tests that toggle process-wide state (the enabled flag,
/// the logger level).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_are_inert_while_disabled() {
        let _lock = test_lock();
        set_enabled(false);
        count!("lib.inert_counter");
        observe!("lib.inert_hist", Unit::Count, 5);
        high_water!("lib.inert_gauge", 5);
        let snap = global().snapshot();
        assert!(!snap.counters.contains_key("lib.inert_counter"));
        assert!(!snap.histograms.contains_key("lib.inert_hist"));
        assert!(!snap.gauges.contains_key("lib.inert_gauge"));
    }

    #[test]
    fn macros_record_when_enabled() {
        let _lock = test_lock();
        set_enabled(true);
        count!("lib.counter");
        count!("lib.counter", 4);
        observe!("lib.hist", Unit::Bytes, 64);
        high_water!("lib.gauge", 9);
        high_water!("lib.gauge", 3);
        set_enabled(false);
        let snap = global().snapshot();
        assert_eq!(snap.counters["lib.counter"], 5);
        assert_eq!(snap.histograms["lib.hist"].sum, 64);
        assert_eq!(snap.gauges["lib.gauge"], 9);
    }

    #[test]
    fn enabled_defaults_off_and_toggles() {
        let _lock = test_lock();
        // Other tests restore the flag; the important invariant is that
        // toggling round-trips.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
