//! Counters, high-water gauges, and log-scaled histograms.
//!
//! Recording is a handful of relaxed atomic operations, so instruments
//! can sit on hot paths; aggregation happens only when a
//! [`Registry::snapshot`] is taken. Snapshots are plain data and
//! [merge](MetricsSnapshot::merge), so per-worker or per-process
//! metrics combine losslessly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (`2^0 ..= 2^63`).
pub const BUCKETS: usize = 65;

/// What a histogram's values measure, carried into snapshots and JSON
/// so consumers never have to guess units from metric names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts (entries, lines, events).
    Count,
    /// Nanoseconds. The *clock domain* is encoded in the metric name:
    /// `span.*` histograms are host wall-clock, `sim.*` histograms are
    /// the deterministic simulated clock (see the crate docs).
    Nanos,
    /// Bytes.
    Bytes,
}

impl Unit {
    /// Stable string form used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Nanos => "ns",
            Unit::Bytes => "bytes",
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: keeps the maximum value ever observed.
#[derive(Debug, Default)]
pub struct MaxGauge {
    value: AtomicU64,
}

impl MaxGauge {
    /// A gauge at zero.
    pub fn new() -> MaxGauge {
        MaxGauge::default()
    }

    /// Raise the high-water mark to at least `v`.
    pub fn observe(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The highest value observed so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value: 0 for 0, otherwise
/// `floor(log2(v)) + 1`, so bucket `b >= 1` covers `[2^(b-1), 2^b)`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[low, high]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

/// A log2-scaled histogram: 65 buckets cover the whole `u64` range, so
/// recording never clamps and never allocates. Percentile estimates
/// interpolate by rank within a bucket, so their error is bounded by
/// the occupied width of the bucket the rank lands in.
#[derive(Debug)]
pub struct Histogram {
    unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// An empty histogram measuring `unit`.
    pub fn new(unit: Unit) -> Histogram {
        Histogram {
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The histogram's unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all accumulators.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            unit: self.unit,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Histogram`], suitable for merging and
/// serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Unit of the recorded values.
    pub unit: Unit,
    /// Number of values recorded.
    pub count: u64,
    /// Sum of all values (wraps only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest recorded value, if any.
    pub min: Option<u64>,
    /// Largest recorded value, if any.
    pub max: Option<u64>,
    /// Per-bucket counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean, if anything was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `p`-th percentile (`0.0..=100.0`): linear
    /// interpolation by rank *within* the bucket containing the target
    /// rank, with the bucket's value range clamped to the observed
    /// `[min, max]` — exact for distributions within one bucket, at
    /// worst off by the occupied width of one bucket otherwise. `p100`
    /// is the observed maximum exactly.
    ///
    /// The old estimator returned the bucket's upper bound, which
    /// inflated tail percentiles (p99/p999) by up to 2x bucket width:
    /// a p99 landing in `[2^k, 2^(k+1))` always reported `2^(k+1)-1`
    /// no matter where the rank actually fell.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Clamp the bucket's nominal range to what was actually
                // observed: the extreme buckets can only hold values
                // between the recorded min and max.
                let (blo, bhi) = bucket_bounds(i);
                let lo = blo.max(self.min.unwrap_or(blo));
                let hi = bhi.min(self.max.unwrap_or(bhi));
                if hi <= lo {
                    return Some(lo);
                }
                // rank_in ∈ 1..=c positions the estimate linearly
                // across the occupied range (rank_in == c ⇒ hi).
                let rank_in = rank - seen;
                let est = lo as f64 + (hi - lo) as f64 * (rank_in as f64 / c as f64);
                return Some(est.round() as u64);
            }
            seen += c;
        }
        self.max
    }

    /// Fold another snapshot into this one.
    ///
    /// # Panics
    ///
    /// Panics if the units disagree — merging nanoseconds into bytes is
    /// always a caller bug.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.unit, other.unit,
            "cannot merge histograms with different units"
        );
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// High-water gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Fold another snapshot into this one: counters and histogram
    /// buckets add, gauges take the maximum.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, v) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(h) => h.merge(v),
                None => {
                    self.histograms.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// True when nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<MaxGauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of instruments.
///
/// Lookup takes a mutex, so callers on hot paths should resolve an
/// instrument once and keep the `Arc` (the [`count!`](crate::count),
/// [`observe!`](crate::observe), and [`high_water!`](crate::high_water)
/// macros cache the lookup in a `OnceLock`). Recording through the
/// returned handles is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().unwrap();
        g.counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The high-water gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<MaxGauge> {
        let mut g = self.inner.lock().unwrap();
        g.gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(MaxGauge::new()))
            .clone()
    }

    /// The histogram named `name`, created with `unit` on first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with a different unit.
    pub fn histogram(&self, name: &str, unit: Unit) -> Arc<Histogram> {
        let mut g = self.inner.lock().unwrap();
        let h = g
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(unit)))
            .clone();
        assert_eq!(
            h.unit(),
            unit,
            "histogram {name:?} re-registered with a different unit"
        );
        h
    }

    /// Copy every instrument's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(9);
        g.observe(7);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's bounds round-trip through bucket_index.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "low bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_accumulators() {
        let h = Histogram::new(Unit::Nanos);
        for v in [0, 1, 5, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2006);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1000));
        assert_eq!(s.mean(), Some(2006.0 / 5.0));
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[3], 1); // 5
        assert_eq!(s.buckets[10], 2); // 1000 in [512, 1023]
    }

    #[test]
    fn percentiles_exact_within_a_bucket() {
        let h = Histogram::new(Unit::Count);
        // 100 values, all exactly 1000: every percentile is 1000.
        for _ in 0..100 {
            h.record(1000);
        }
        let s = h.snapshot();
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), Some(1000), "p{p}");
        }
    }

    #[test]
    fn percentiles_bounded_by_bucket_width() {
        let h = Histogram::new(Unit::Count);
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p10's rank is 10 → bucket [8,15], rank 3 of 8 within it →
        // interpolates to 11 (true value 10; the old upper-bound
        // estimator reported 15).
        assert_eq!(s.percentile(10.0), Some(11));
        // Uniform data lands interpolation on the true rank values.
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(99.0), Some(99));
        // The top percentile is the observed max exactly.
        assert_eq!(s.percentile(100.0), Some(100));
        // Empty histograms have no percentiles.
        assert_eq!(
            Histogram::new(Unit::Count).snapshot().percentile(50.0),
            None
        );
    }

    #[test]
    fn tail_percentiles_not_inflated_by_bucket_upper_bound() {
        // 1000 uniform latencies 1..=1000 ns: the p99/p999 ranks land
        // mid-bucket in [512, 1023]. The old upper-bound estimator
        // reported the bucket bound (1000 after the max clamp) for
        // every rank in the bucket; rank interpolation recovers the
        // true order statistics almost exactly.
        let h = Histogram::new(Unit::Nanos);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(99.0), Some(990));
        // p99.9's rank rounds up to the top rank at this count, which
        // reports the observed max — never past it.
        assert_eq!(s.percentile(99.9), Some(1000));
        assert_eq!(s.percentile(100.0), Some(1000));
        // Merged snapshots estimate identically to a single histogram
        // fed the union of values.
        let a = Histogram::new(Unit::Nanos);
        let b = Histogram::new(Unit::Nanos);
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(merged.percentile(p), s.percentile(p), "p{p}");
        }
    }

    #[test]
    fn snapshot_merge_is_lossless() {
        let a = Histogram::new(Unit::Nanos);
        let b = Histogram::new(Unit::Nanos);
        let whole = Histogram::new(Unit::Nanos);
        for v in 0..50 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..70 {
            b.record(v * 17 + 1);
            whole.record(v * 17 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    #[should_panic(expected = "different units")]
    fn merge_rejects_unit_mismatch() {
        let mut a = Histogram::new(Unit::Nanos).snapshot();
        a.merge(&Histogram::new(Unit::Bytes).snapshot());
    }

    #[test]
    fn registry_returns_same_instrument() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter("x").get(), 5);
        r.gauge("g").observe(7);
        r.histogram("h", Unit::Bytes).record(42);
        let s = r.snapshot();
        assert_eq!(s.counters["x"], 5);
        assert_eq!(s.gauges["g"], 7);
        assert_eq!(s.histograms["h"].count, 1);
    }

    #[test]
    fn metrics_snapshot_merge() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("shared").add(2);
        r2.counter("shared").add(5);
        r2.counter("only2").inc();
        r1.gauge("hw").observe(10);
        r2.gauge("hw").observe(4);
        r1.histogram("h", Unit::Nanos).record(1);
        r2.histogram("h", Unit::Nanos).record(100);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counters["shared"], 7);
        assert_eq!(s.counters["only2"], 1);
        assert_eq!(s.gauges["hw"], 10);
        assert_eq!(s.histograms["h"].count, 2);
        assert_eq!(s.histograms["h"].min, Some(1));
        assert_eq!(s.histograms["h"].max, Some(100));
    }
}
