//! A leveled stderr logger.
//!
//! Diagnostics must never share stdout with machine-readable output:
//! `whisper-report --json` promises that stdout carries only the
//! report. Everything chatty goes through here, to stderr, filtered by
//! a global level — `--quiet` drops it to [`Level::Error`] so scripts
//! see errors and nothing else.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or wrong; always shown, even under `--quiet`.
    Error = 1,
    /// Suspicious but proceeding.
    Warn = 2,
    /// Progress reporting (the default threshold).
    Info = 3,
    /// Detail for debugging the harness itself.
    Debug = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            _ => Level::Info,
        }
    }

    /// Lowercase name, as printed in the log prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the maximum level that will be emitted.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current threshold.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `l` would currently be emitted.
pub fn enabled_at(l: Level) -> bool {
    l <= level()
}

/// Emit one record to stderr (used by the [`error!`](crate::error) /
/// [`warn!`](crate::warn) / [`info!`](crate::info) /
/// [`debug!`](crate::debug) macros).
pub fn log(l: Level, args: std::fmt::Arguments<'_>) {
    if enabled_at(l) {
        eprintln!("[{}] {}", l.as_str(), args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_threshold_math() {
        let _lock = crate::test_lock();
        set_level(Level::Info);
        assert!(enabled_at(Level::Error));
        assert!(enabled_at(Level::Info));
        assert!(!enabled_at(Level::Debug));
        set_level(Level::Error);
        assert!(enabled_at(Level::Error));
        assert!(!enabled_at(Level::Warn));
        set_level(Level::Info);
    }

    #[test]
    fn level_round_trips() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }
}
