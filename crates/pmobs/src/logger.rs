//! A leveled stderr logger.
//!
//! Diagnostics must never share stdout with machine-readable output:
//! `whisper-report --json` promises that stdout carries only the
//! report. Everything chatty goes through here, to stderr, filtered by
//! a global level — `--quiet` drops it to [`Level::Error`] so scripts
//! see errors and nothing else.
//!
//! The default threshold can also come from the environment: until the
//! first [`set_level`] call, the `WHISPER_LOG` variable
//! (`error|warn|info|debug`, or the numeric levels `1`–`4`) selects the
//! threshold, falling back to [`Level::Info`] when unset or
//! unparseable. An explicit [`set_level`] (e.g. `--quiet`) always wins
//! over the environment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or wrong; always shown, even under `--quiet`.
    Error = 1,
    /// Suspicious but proceeding.
    Warn = 2,
    /// Progress reporting (the default threshold).
    Info = 3,
    /// Detail for debugging the harness itself.
    Debug = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            _ => Level::Info,
        }
    }

    /// Lowercase name, as printed in the log prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// `0` = "unset": fall back to the `WHISPER_LOG` environment default.
/// Every [`Level`] discriminant is non-zero, so an explicit
/// [`set_level`] can never be mistaken for unset.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Set the maximum level that will be emitted, overriding any
/// `WHISPER_LOG` environment default.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Parse a `WHISPER_LOG` value: a level name (`error|warn|info|debug`,
/// case-insensitive) or its numeric discriminant (`1`–`4`). `None` for
/// anything else — the caller falls back to [`Level::Info`].
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" | "1" => Some(Level::Error),
        "warn" | "warning" | "2" => Some(Level::Warn),
        "info" | "3" => Some(Level::Info),
        "debug" | "4" => Some(Level::Debug),
        _ => None,
    }
}

/// The `WHISPER_LOG` default, read once per process.
fn env_level() -> Level {
    static ENV: OnceLock<Level> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("WHISPER_LOG")
            .ok()
            .and_then(|v| parse_level(&v))
            .unwrap_or(Level::Info)
    })
}

/// The current threshold: the last [`set_level`] value, or the
/// `WHISPER_LOG` environment default before any explicit set.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => env_level(),
        v => Level::from_u8(v),
    }
}

/// Whether a message at `l` would currently be emitted.
pub fn enabled_at(l: Level) -> bool {
    l <= level()
}

/// Emit one record to stderr (used by the [`error!`](crate::error) /
/// [`warn!`](crate::warn) / [`info!`](crate::info) /
/// [`debug!`](crate::debug) macros).
pub fn log(l: Level, args: std::fmt::Arguments<'_>) {
    if enabled_at(l) {
        eprintln!("[{}] {}", l.as_str(), args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_threshold_math() {
        let _lock = crate::test_lock();
        set_level(Level::Info);
        assert!(enabled_at(Level::Error));
        assert!(enabled_at(Level::Info));
        assert!(!enabled_at(Level::Debug));
        set_level(Level::Error);
        assert!(enabled_at(Level::Error));
        assert!(!enabled_at(Level::Warn));
        set_level(Level::Info);
    }

    #[test]
    fn level_round_trips() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }

    #[test]
    fn whisper_log_values_parse() {
        assert_eq!(parse_level("error"), Some(Level::Error));
        assert_eq!(parse_level("WARN"), Some(Level::Warn));
        assert_eq!(parse_level("warning"), Some(Level::Warn));
        assert_eq!(parse_level(" info "), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("1"), Some(Level::Error));
        assert_eq!(parse_level("4"), Some(Level::Debug));
        assert_eq!(parse_level("verbose"), None);
        assert_eq!(parse_level(""), None);
        assert_eq!(parse_level("0"), None);
    }

    #[test]
    fn explicit_set_level_overrides_env_default() {
        let _lock = crate::test_lock();
        // Whatever WHISPER_LOG says (or doesn't), an explicit set wins.
        set_level(Level::Debug);
        assert_eq!(level(), Level::Debug);
        set_level(Level::Error);
        assert_eq!(level(), Level::Error);
        set_level(Level::Info);
    }
}
