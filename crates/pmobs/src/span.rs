//! RAII span timing, split by clock domain.
//!
//! Two clocks exist in this codebase and they must never be conflated:
//!
//! * **Host wall-clock** — `std::time::Instant`, nondeterministic,
//!   measures how long the *harness* takes (suite runs, trace
//!   analysis). Recorded by [`SpanGuard`] under `span.<name>`.
//! * **Simulated cycle clock** — `memsim`'s deterministic `now_ns()`,
//!   measures how long the *modeled machine* takes. pmobs cannot read
//!   it, so callers hand deltas to [`record_sim_ns`], recorded under
//!   `sim.<name>`.
//!
//! Keeping the namespaces disjoint means a JSON report consumer can
//! tell at a glance which numbers are reproducible bit-for-bit across
//! runs (`sim.*`) and which are environmental (`span.*`).

use crate::metrics::Unit;
use std::time::Instant;

/// An RAII wall-clock timer: created by [`span!`](crate::span), records
/// its elapsed time into the global registry histogram
/// `span.<name>[/<label>]` when dropped. Inert (no clock read, no
/// allocation) while recording is [disabled](crate::enabled).
#[derive(Debug)]
pub struct SpanGuard<'a> {
    start: Option<Instant>,
    name: &'static str,
    label: Option<&'a str>,
}

impl<'a> SpanGuard<'a> {
    /// Start a span. `label` distinguishes instances of the same site
    /// (e.g. the application name).
    pub fn new(name: &'static str, label: Option<&'a str>) -> SpanGuard<'a> {
        SpanGuard {
            start: crate::enabled().then(Instant::now),
            name,
            label,
        }
    }

    /// The metric name this span records under.
    pub fn metric_name(&self) -> String {
        match self.label {
            Some(l) => format!("span.{}/{}", self.name, l),
            None => format!("span.{}", self.name),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::global()
            .histogram(&self.metric_name(), Unit::Nanos)
            .record(ns);
    }
}

/// Record a duration measured on the **simulated** clock under
/// `sim.<name>`. No-op while recording is disabled.
pub fn record_sim_ns(name: &str, ns: u64) {
    if crate::enabled() {
        crate::global()
            .histogram(&format!("sim.{name}"), Unit::Nanos)
            .record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_names_include_label() {
        let g = SpanGuard::new("analyze", Some("echo"));
        assert_eq!(g.metric_name(), "span.analyze/echo");
        let g = SpanGuard::new("analyze", None);
        assert_eq!(g.metric_name(), "span.analyze");
    }

    #[test]
    fn disabled_span_is_inert() {
        let _lock = crate::test_lock();
        assert!(!crate::enabled());
        let g = SpanGuard::new("idle", None);
        assert!(g.start.is_none());
    }

    #[test]
    fn enabled_span_records_wall_time() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        {
            let _g = SpanGuard::new("test_span_records", None);
        }
        crate::set_enabled(false);
        let snap = crate::global().snapshot();
        let h = &snap.histograms["span.test_span_records"];
        assert!(h.count >= 1);
        assert_eq!(h.unit, Unit::Nanos);
    }
}
