//! A hand-rolled JSON value, encoder, and parser.
//!
//! The build environment vendors no external crates, so structured
//! emission cannot lean on serde. [`Json`] is a small document model
//! with a compact writer ([`Json::to_compact`]), a pretty writer
//! ([`Json::to_pretty`]), a JSONL helper ([`to_jsonl`]), and a strict
//! parser ([`parse`]) so reports can be validated without leaving Rust.
//!
//! Object keys keep insertion order — reports read top-to-bottom the
//! way they were built.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`. Also what non-finite floats encode to.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (parser only produces this for values < 0).
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for builder-style construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add or replace a field (builder style).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value.into(),
                    None => fields.push((key.to_string(), value.into())),
                }
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Single-line encoding.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line encoding (two-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode one value per line (JSON Lines).
pub fn to_jsonl<'a>(values: impl IntoIterator<Item = &'a Json>) -> String {
    let mut out = String::new();
    for v in values {
        out.push_str(&v.to_compact());
        out.push('\n');
    }
    out
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the encoder never emits them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume a maximal run of plain characters in one
                    // slice. The delimiters (quote, backslash, control
                    // bytes) are all ASCII, so stopping on them never
                    // splits a UTF-8 scalar, and validating only the
                    // run keeps parsing linear in the document size.
                    let start = self.pos;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s =
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was utf-8");
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_encoding() {
        let doc = Json::obj()
            .field("name", "whisper")
            .field("n", 42u64)
            .field("frac", 0.25)
            .field("ok", true)
            .field("missing", Json::Null)
            .field("list", Json::Arr(vec![1u64.into(), 2u64.into()]));
        assert_eq!(
            doc.to_compact(),
            r#"{"name":"whisper","n":42,"frac":0.25,"ok":true,"missing":null,"list":[1,2]}"#
        );
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{30c4}";
        let doc = Json::Str(nasty.to_string());
        let enc = doc.to_compact();
        assert_eq!(parse(&enc).unwrap(), doc);
    }

    #[test]
    fn encoder_output_parses_back_identically() {
        let doc = Json::obj()
            .field("a", Json::Arr(vec![Json::Null, false.into(), 3.5.into()]))
            .field("b", Json::obj().field("nested", 7u64))
            .field("c", "s");
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn field_replaces_existing_key() {
        let doc = Json::obj().field("k", 1u64).field("k", 2u64);
        assert_eq!(doc.get("k"), Some(&Json::U64(2)));
        assert_eq!(doc.to_compact(), r#"{"k":2}"#);
    }

    #[test]
    fn jsonl_one_value_per_line() {
        let values = [Json::U64(1), Json::obj().field("x", 2u64)];
        assert_eq!(to_jsonl(values.iter()), "1\n{\"x\":2}\n");
    }

    #[test]
    fn parser_accepts_numbers() {
        assert_eq!(parse("0").unwrap(), Json::U64(0));
        assert_eq!(parse("-12").unwrap(), Json::I64(-12));
        assert_eq!(parse("3.5e2").unwrap(), Json::F64(350.0));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn negative_i64_from_impl() {
        assert_eq!(Json::from(-5i64), Json::I64(-5));
        assert_eq!(Json::from(5i64), Json::U64(5));
    }
}
