//! WHISPER suite — umbrella crate.
//!
//! A from-scratch Rust reproduction of *An Analysis of Persistent
//! Memory Use with WHISPER* (ASPLOS 2017): the ten-application WHISPER
//! benchmark suite, its trace framework and epoch-level analysis, and
//! the Hands-Off Persistence System (HOPS), all running on a simulated
//! persistent-memory substrate.
//!
//! This crate re-exports every workspace crate so downstream users can
//! depend on one package:
//!
//! * [`pmem`] — simulated NVM/DRAM devices and crash images
//! * [`memsim`] — cache hierarchy, x86-64 persistence instructions,
//!   adversarial crash modes
//! * [`pmtrace`] — the trace framework and the Section 5 analyses
//! * [`pmalloc`] — the three persistent allocator designs
//! * [`pmtx`] — redo (Mnemosyne-style) and undo (NVML-style)
//!   transaction engines
//! * [`pmds`] — crash-recoverable persistent data structures
//! * [`pmfs`] — the PMFS-style filesystem
//! * [`hops`] — persist buffers, `ofence`/`dfence`, and the Figure 10
//!   timing models
//! * [`whisper`] — the ten applications, workloads, suite runner, and
//!   paper-table reports
//!
//! # Quick start
//!
//! ```no_run
//! use whisper_suite::whisper::suite::{run_app, SuiteConfig};
//!
//! let result = run_app("hashmap", &SuiteConfig::quick());
//! println!("{:.0} epochs/s", result.analysis.epochs_per_sec);
//! ```
//!
//! See `examples/` for runnable walkthroughs and `whisper-report` for
//! regenerating every table and figure in the paper.

#![forbid(unsafe_code)]

pub use hops;
pub use memsim;
pub use pmalloc;
pub use pmds;
pub use pmem;
pub use pmfs;
pub use pmtrace;
pub use pmtx;
pub use whisper;
